"""Compilation-as-a-service: an asyncio HTTP front end over a job queue.

Two layers:

* :class:`CompileService` -- the protocol-free core: a bounded priority
  :class:`~repro.service.queue.JobQueue`, a pool of worker threads
  reusing the batch executor (:func:`repro.service.batch
  .execute_request`), in-flight *coalescing* (concurrent identical
  requests -- same ``CompileRequest.key()``, same tenant -- share one
  compilation), *structural coalescing* (parameterised requests that
  differ only in angle values share one structural compile and bind
  per-request), per-tenant salted artifact caches, and a
  :class:`~repro.service.metrics.ServiceMetrics` aggregate.

* :class:`CompileServer` -- a minimal HTTP/1.1 handler on
  ``asyncio.start_server`` (stdlib only) routing::

      POST /compile   one CompileRequest JSON -> CompileResponse JSON
      POST /batch     a request list -> response list, byte-identical
                      to ``python -m repro batch --json``
      GET  /metrics   cache hit/miss, per-pass timings, queue depth,
                      latency histograms
      GET  /healthz   liveness + drain state
      POST /shutdown  graceful drain-and-exit

Backpressure: a full queue answers 429, a draining server 503 -- the
client SDK (:mod:`repro.service.client`) retries both with backoff.

Request JSON carries the :class:`CompileRequest` fields plus an optional
*envelope*: ``tenant`` (isolates the artifact cache under
``cache_dir/<tenant>`` composed through ``salted_directory``),
``priority`` (higher pops first) and ``timeout_s`` (the job is cancelled
with an error response if it cannot start in time).
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.cache.store import (
    ArtifactCache,
    LockingArtifactCache,
    salted_directory,
)
from repro.service.batch import (
    CompileRequest,
    CompileResponse,
    assemble_responses,
    compute_request_keys,
    error_response,
    execute_request,
    request_from_dict,
)
from repro.service.metrics import ServiceMetrics
from repro.service.queue import (
    Job,
    JobQueue,
    QueueClosedError,
    QueueFullError,
)

_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{0,64}$")
_MAX_BODY_BYTES = 16 * 1024 * 1024
_STATUS_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}
#: Envelope fields the service consumes before request parsing.
ENVELOPE_FIELDS = ("tenant", "priority", "timeout_s")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one compile service instance."""

    jobs: int = 2
    queue_depth: int = 64
    cache_dir: str | Path | None = None
    memory_limit: int = 1024
    default_timeout_s: float | None = None
    max_structurals: int = 128


@dataclass(frozen=True)
class Envelope:
    """Service-level request fields, split off before request parsing."""

    tenant: str = ""
    priority: int = 0
    timeout_s: float | None = None


def split_envelope(payload: dict, defaults: Envelope = Envelope(),
                   ) -> tuple[dict, Envelope]:
    """Separate envelope fields from the request payload, validating.

    Returns the remaining request fields (for ``request_from_dict``) and
    the envelope; unset fields inherit ``defaults`` (the batch-level
    envelope, or the server defaults).
    """
    payload = dict(payload)
    tenant = payload.pop("tenant", defaults.tenant)
    priority = payload.pop("priority", defaults.priority)
    timeout_s = payload.pop("timeout_s", defaults.timeout_s)
    if not isinstance(tenant, str) or not _TENANT_RE.fullmatch(tenant) \
            or ".." in tenant:
        raise ValueError(
            f"field 'tenant' must be a short name of letters, digits, "
            f"'.', '_' or '-', got {tenant!r}")
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise ValueError(f"field 'priority' must be an integer, "
                         f"got {priority!r}")
    if timeout_s is not None and (
            isinstance(timeout_s, bool)
            or not isinstance(timeout_s, (int, float))
            or timeout_s <= 0):
        raise ValueError(f"field 'timeout_s' must be a positive number, "
                         f"got {timeout_s!r}")
    envelope = Envelope(tenant=tenant, priority=priority,
                        timeout_s=None if timeout_s is None
                        else float(timeout_s))
    return payload, envelope


class CompileService:
    """Queue + worker pool + coalescing + tenant caches (no HTTP)."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.queue = JobQueue(self.config.queue_depth)
        self.metrics = ServiceMetrics()
        self._lock = threading.Lock()
        self._caches: dict[str, ArtifactCache] = {}
        self._structurals: dict[str, dict] = {}
        self._structural_locks: dict[tuple[str, str], threading.Lock] = {}
        self._inflight: dict[tuple[str, str], Job] = {}
        self._workers: list[threading.Thread] = []
        self._running = 0
        self._draining = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._workers:
            raise RuntimeError("service already started")
        for index in range(self.config.jobs):
            worker = threading.Thread(target=self._worker_loop,
                                      name=f"compile-worker-{index}",
                                      daemon=True)
            worker.start()
            self._workers.append(worker)

    @property
    def draining(self) -> bool:
        return self._draining

    def shutdown(self, drain: bool = True) -> int:
        """Stop accepting work; returns the number of pending jobs.

        ``drain=True`` (graceful) leaves queued jobs for the workers to
        finish; ``drain=False`` resolves them immediately with error
        responses.  Idempotent.
        """
        with self._lock:
            self._draining = True
        if not drain:
            for job in self.queue.drain():
                self.metrics.increment("cancelled")
                job.resolve(error_response(
                    job.request,
                    QueueClosedError("server stopped before the job ran"),
                    request_key=job.key))
        return len(self.queue.close())

    def join(self, timeout: float | None = None) -> None:
        """Wait for the workers to drain the queue and exit."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        for worker in self._workers:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            worker.join(remaining)

    # ------------------------------------------------------------------
    # caches
    # ------------------------------------------------------------------
    def cache_for(self, tenant: str = "") -> ArtifactCache:
        """The tenant's shared (thread-safe) artifact cache.

        With a ``cache_dir``, each tenant's artifacts live under
        ``cache_dir/<tenant>`` composed through ``salted_directory`` --
        so tenants never read each other's artifacts and a source change
        starts every tenant on a fresh cache.  Without one, each tenant
        keeps a private in-memory cache.
        """
        with self._lock:
            cache = self._caches.get(tenant)
            if cache is None:
                directory = None
                if self.config.cache_dir is not None:
                    root = Path(self.config.cache_dir)
                    directory = salted_directory(root / tenant if tenant
                                                 else root)
                cache = LockingArtifactCache(
                    directory, memory_limit=self.config.memory_limit)
                self._caches[tenant] = cache
            return cache

    def _structurals_for(self, tenant: str) -> dict:
        with self._lock:
            return self._structurals.setdefault(tenant, {})

    def _structural_lock(self, tenant: str, skey: str) -> threading.Lock:
        with self._lock:
            return self._structural_locks.setdefault(
                (tenant, skey), threading.Lock())

    # ------------------------------------------------------------------
    # submission & coalescing
    # ------------------------------------------------------------------
    def submit(self, request: CompileRequest, key: str, *,
               tenant: str = "", priority: int = 0,
               timeout_s: float | None = None) -> tuple[Job, bool]:
        """Enqueue a request, coalescing onto an in-flight twin.

        Returns ``(job, coalesced)``: when an identical request (same
        key, same tenant) is already queued or running, the caller
        attaches to its job -- one compilation serves every waiter.
        Raises :class:`QueueFullError` (backpressure) or
        :class:`QueueClosedError` (draining).
        """
        if timeout_s is None:
            timeout_s = self.config.default_timeout_s
        slot = (tenant, key)
        with self._lock:
            if self._draining:
                raise QueueClosedError("server is draining")
            job = self._inflight.get(slot)
            if job is not None and not job.future.done():
                self.metrics.increment("coalesced")
                return job, True
            job = Job(request=request, key=key, tenant=tenant,
                      priority=priority, timeout_s=timeout_s)
            self._inflight[slot] = job
            job.future.add_done_callback(
                lambda _future, slot=slot, job=job: self._forget(slot, job))
            try:
                self.queue.put(job)
            except Exception:
                self._inflight.pop(slot, None)
                raise
            self.metrics.increment("submitted")
            return job, False

    def _forget(self, slot: tuple[str, str], job: Job) -> None:
        with self._lock:
            if self._inflight.get(slot) is job:
                del self._inflight[slot]

    def timeout_response(self, job: Job) -> CompileResponse:
        limit = job.timeout_s
        message = ("cancelled before the job could run" if limit is None
                   else f"request timed out after {limit:g}s in the queue")
        return error_response(job.request, TimeoutError(message),
                              request_key=job.key)

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self.queue.get()
            if job is None:
                return
            with self._lock:
                self._running += 1
            try:
                self._serve_job(job)
            finally:
                with self._lock:
                    self._running -= 1

    def _serve_job(self, job: Job) -> None:
        if job.cancelled:
            # whoever cancelled already counted the timeout
            job.resolve(self.timeout_response(job))
            return
        if job.expired:
            self.metrics.increment("timed_out")
            job.resolve(self.timeout_response(job))
            return
        job.started = True
        queue_wait = time.monotonic() - job.enqueued_at
        start = time.perf_counter()
        try:
            response = self._execute(job)
        except Exception as exc:
            response = error_response(job.request, exc, request_key=job.key)
        # record before resolving: a waiter that reads /metrics right
        # after its response must already see this job counted
        self.metrics.observe_response(response, queue_wait,
                                      time.perf_counter() - start)
        job.resolve(response)

    def _execute(self, job: Job) -> CompileResponse:
        cache = self.cache_for(job.tenant)
        if not job.request.parameters:
            return execute_request(job.request, cache, request_key=job.key)
        # structural coalescing: requests differing only in angle values
        # share one structural compile; the per-structure lock makes
        # concurrent first arrivals compile it exactly once
        skey = job.request.structural_key()
        structurals = self._structurals_for(job.tenant)
        with self._structural_lock(job.tenant, skey):
            known = skey in structurals
            response = execute_request(job.request, cache, structurals,
                                       request_key=job.key)
            if not known and skey in structurals:
                self.metrics.increment("structural_compiles")
            while len(structurals) > self.config.max_structurals:
                structurals.pop(next(iter(structurals)), None)
        self.metrics.increment("structural_binds")
        return response

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def health_payload(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "queue_depth": len(self.queue),
            "workers": len(self._workers),
        }

    def metrics_payload(self) -> dict:
        payload = self.metrics.snapshot()
        with self._lock:
            caches = dict(self._caches)
            running = self._running
        payload["queue"] = {
            "depth": len(self.queue),
            "capacity": self.queue.maxsize,
            "workers": len(self._workers),
            "running": running,
            "draining": self._draining,
        }
        payload["cache"] = {tenant or "default": cache.stats()
                            for tenant, cache in sorted(caches.items())}
        return payload


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------
class _BadRequest(ValueError):
    pass


async def _read_request(reader: asyncio.StreamReader,
                        ) -> tuple[str, str, dict, bytes]:
    line = await reader.readline()
    if not line:
        raise ConnectionResetError("client closed the connection")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise _BadRequest(f"malformed request line {line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest("bad Content-Length header") from None
    if length > _MAX_BODY_BYTES:
        raise _BadRequest(f"body exceeds {_MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


async def _write_response(writer: asyncio.StreamWriter, status: int,
                          payload: object) -> None:
    # indent=2 keeps /batch output byte-identical to the CLI's stdout
    body = json.dumps(payload, indent=2).encode()
    reason = _STATUS_REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    writer.write(head.encode("latin-1") + body)
    await writer.drain()


class CompileServer:
    """Asyncio HTTP/1.1 front end around a :class:`CompileService`."""

    def __init__(self, service: CompileService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closed: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._shutdown_started = False

    async def start(self) -> None:
        """Bind the listener (port 0 picks an ephemeral port) and start
        the service workers."""
        self._loop = asyncio.get_running_loop()
        self._closed = asyncio.Event()
        if not self.service._workers:
            self.service.start()
        self._server = await asyncio.start_server(self._handle, self.host,
                                                  self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Block until a shutdown (signal or ``POST /shutdown``) drains."""
        await self._closed.wait()

    def begin_shutdown(self, drain: bool = True) -> None:
        """Start the graceful exit; safe to call from the loop thread
        (signal handlers, the /shutdown route).  Idempotent."""
        if self._shutdown_started:
            return
        self._shutdown_started = True
        self._loop.create_task(self._shutdown_task(drain))

    def begin_shutdown_threadsafe(self, drain: bool = True) -> None:
        """Like :meth:`begin_shutdown`, callable from any thread."""
        try:
            self._loop.call_soon_threadsafe(self.begin_shutdown, drain)
        except RuntimeError:
            pass    # loop already closed: shutdown has happened

    async def _shutdown_task(self, drain: bool) -> None:
        loop = asyncio.get_running_loop()
        self.service.shutdown(drain=drain)
        # the queue drains on worker threads; don't block the loop --
        # in-flight handlers still need it to deliver their responses
        await loop.run_in_executor(None, self.service.join)
        current = asyncio.current_task()
        pending = [task for task in self._conn_tasks
                   if task is not current and not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=5.0)
        self._server.close()
        await self._server.wait_closed()
        self._closed.set()

    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            try:
                method, target, _headers, body = await _read_request(reader)
            except _BadRequest as exc:
                await _write_response(writer, 400, {"error": str(exc)})
                return
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            try:
                status, payload = await self._dispatch(method, target, body)
            except Exception as exc:      # one broken handler must not
                status = 500              # take the server down
                payload = {"error": f"{type(exc).__name__}: {exc}"}
            await _write_response(writer, status, payload)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(self, method: str, target: str,
                        body: bytes) -> tuple[int, object]:
        path = target.split("?", 1)[0]
        routes = {"/healthz": "GET", "/metrics": "GET", "/compile": "POST",
                  "/batch": "POST", "/shutdown": "POST"}
        expected = routes.get(path)
        if expected is None:
            return 404, {"error": f"no route {path}"}
        if method != expected:
            return 405, {"error": f"{path} expects {expected}"}
        if path == "/healthz":
            return 200, self.service.health_payload()
        if path == "/metrics":
            return 200, self.service.metrics_payload()
        if path == "/shutdown":
            return self._shutdown_route(body)
        if path == "/compile":
            return await self._compile_route(body)
        return await self._batch_route(body)

    def _shutdown_route(self, body: bytes) -> tuple[int, object]:
        drain = True
        if body:
            try:
                payload = json.loads(body)
            except ValueError:
                return 400, {"error": "shutdown body must be JSON"}
            if not isinstance(payload, dict) \
                    or not isinstance(payload.get("drain", True), bool):
                return 400, {"error": "shutdown body must be an object "
                                      "with an optional boolean 'drain'"}
            drain = payload.get("drain", True)
        pending = len(self.service.queue)
        self.begin_shutdown(drain=drain)
        return 200, {"status": "draining" if drain else "stopping",
                     "pending": pending}

    # ------------------------------------------------------------------
    def _default_envelope(self) -> Envelope:
        return Envelope(timeout_s=self.service.config.default_timeout_s)

    async def _await_job(self, job: Job,
                         timeout_s: float | None) -> CompileResponse:
        # shield: a waiter timing out must not cancel the shared future
        # other coalesced waiters (and the cache) still want
        future = asyncio.wrap_future(job.future)
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout_s)
        except asyncio.TimeoutError:
            if not job.started:
                job.cancel()
            self.service.metrics.increment("timed_out")
            return self.service.timeout_response(job)

    async def _compile_route(self, body: bytes) -> tuple[int, object]:
        try:
            payload = json.loads(body)
        except ValueError:
            return 400, {"error": "request body must be JSON"}
        if not isinstance(payload, dict):
            return 400, {"error": "request body must be a JSON object"}
        try:
            request_payload, envelope = split_envelope(
                payload, self._default_envelope())
            request = request_from_dict(request_payload)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        self.service.metrics.increment("received")
        try:
            key = request.key()
        except Exception as exc:
            self.service.metrics.increment("failed")
            return 200, error_response(request, exc).to_dict()
        try:
            job, _coalesced = self.service.submit(
                request, key, tenant=envelope.tenant,
                priority=envelope.priority, timeout_s=envelope.timeout_s)
        except QueueFullError as exc:
            self.service.metrics.increment("rejected_queue_full")
            return 429, {"error": str(exc),
                         "queue_depth": len(self.service.queue)}
        except QueueClosedError as exc:
            return 503, {"error": str(exc)}
        response = await self._await_job(job, envelope.timeout_s)
        return 200, response.to_dict()

    async def _batch_route(self, body: bytes) -> tuple[int, object]:
        try:
            payload = json.loads(body)
        except ValueError:
            return 400, {"error": "request body must be JSON"}
        defaults = self._default_envelope()
        if isinstance(payload, dict):
            items = payload.get("requests")
            extra = set(payload) - {"requests", *ENVELOPE_FIELDS}
            if not isinstance(items, list) or extra:
                return 400, {"error": "batch object must hold 'requests' "
                                      "(a list) plus optional "
                                      f"{sorted(ENVELOPE_FIELDS)}"}
            try:
                _, defaults = split_envelope(
                    {k: v for k, v in payload.items() if k != "requests"},
                    defaults)
            except ValueError as exc:
                return 400, {"error": str(exc)}
        elif isinstance(payload, list):
            items = payload
        else:
            return 400, {"error": "batch body must be a JSON list or an "
                                  "object with a 'requests' list"}
        requests: list[CompileRequest] = []
        envelopes: list[Envelope] = []
        for index, item in enumerate(items):
            if not isinstance(item, dict):
                return 400, {"error": f"request #{index} must be a JSON "
                                      f"object"}
            try:
                request_payload, envelope = split_envelope(item, defaults)
                requests.append(request_from_dict(request_payload))
            except ValueError as exc:
                return 400, {"error": f"request #{index}: {exc}"}
            envelopes.append(envelope)
        self.service.metrics.increment("received", len(requests))
        keys, pre_failed = compute_request_keys(requests)
        if pre_failed:
            self.service.metrics.increment("failed", len(pre_failed))
        jobs: dict[str, tuple[Job, Envelope]] = {}
        duplicates = 0
        for request, key, envelope in zip(requests, keys, envelopes):
            if key is None:
                continue
            if key in jobs:
                duplicates += 1
                continue
            try:
                job, _coalesced = self.service.submit(
                    request, key, tenant=envelope.tenant,
                    priority=envelope.priority,
                    timeout_s=envelope.timeout_s)
            except QueueFullError as exc:
                # all-or-nothing: the client retries the whole batch;
                # jobs already submitted keep running and warm the cache
                self.service.metrics.increment("rejected_queue_full")
                return 429, {"error": str(exc),
                             "queue_depth": len(self.service.queue)}
            except QueueClosedError as exc:
                return 503, {"error": str(exc)}
            jobs[key] = (job, envelope)
        if duplicates:
            self.service.metrics.increment("deduplicated", duplicates)
        results = await asyncio.gather(*(
            self._await_job(job, envelope.timeout_s)
            for job, envelope in jobs.values()))
        computed = dict(zip(jobs.keys(), results))
        responses = assemble_responses(requests, keys, computed, pre_failed)
        return 200, [response.to_dict() for response in responses]


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def serve(config: ServiceConfig | None = None, host: str = "127.0.0.1",
          port: int = 8000, *, install_signals: bool = True) -> int:
    """Run a compile server in the foreground (the CLI entry point).

    Prints ``serving on HOST:PORT`` to stderr once the listener is bound
    (with ``--port 0`` this is how callers learn the ephemeral port) and
    blocks until SIGINT/SIGTERM or ``POST /shutdown`` drains the queue.
    """
    service = CompileService(config)
    server = CompileServer(service, host, port)

    async def _main() -> None:
        await server.start()
        print(f"serving on {server.host}:{server.port}", file=sys.stderr,
              flush=True)
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, server.begin_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass   # non-main thread or unsupported platform
        await server.serve_until_shutdown()

    asyncio.run(_main())
    return 0


class ServerThread:
    """A compile server on a background thread (tests and examples).

    Usage::

        with ServerThread(CompileService(config)) as handle:
            client = CompileClient(port=handle.port)
            ...

    The context exit performs a graceful drain.
    """

    def __init__(self, service: CompileService | None = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service or CompileService()
        self.server = CompileServer(self.service, host, port)
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._run,
                                        name="compile-server", daemon=True)

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        async def _main() -> None:
            await self.server.start()
            self._ready.set()
            await self.server.serve_until_shutdown()

        try:
            asyncio.run(_main())
        except BaseException as exc:
            self._error = exc
            self._ready.set()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(10.0)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 10s")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain; idempotent (a /shutdown-stopped server is
        already gone)."""
        if self._thread.is_alive():
            self.server.begin_shutdown_threadsafe()
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
