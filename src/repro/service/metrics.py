"""Service metrics: counters, pass-timing aggregates, latency histograms.

One :class:`ServiceMetrics` instance lives inside the compile service;
worker threads fold every served response into it and the ``/metrics``
endpoint snapshots it as plain JSON.  Pass timings aggregate through
:func:`repro.analysis.engine.aggregate_pass_timings` -- the same fold
``sweep --pass-timings`` reports -- and cache counters are *not* kept
here: the server reads them from :meth:`ArtifactCache.stats`, the one
shared counter snapshot API.
"""

from __future__ import annotations

import bisect
import threading
import time

from repro.analysis.engine import aggregate_pass_timings

#: Prometheus-style upper bounds (seconds) for the latency histograms.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0)

#: Every counter the service increments, so ``/metrics`` always exports
#: the full schema (zeros included) and clients never need existence
#: checks.
COUNTER_NAMES = (
    "received",            # requests accepted by /compile and /batch
    "submitted",           # jobs actually enqueued
    "coalesced",           # requests attached to an in-flight identical job
    "deduplicated",        # batch-internal repeats served from one compile
    "compiled",            # jobs executed by a worker
    "failed",              # error-carrying responses produced
    "timed_out",           # jobs cancelled by queue or waiter timeout
    "rejected_queue_full", # requests refused with backpressure (429)
    "cancelled",           # jobs discarded by a hard (non-drain) shutdown
    "structural_compiles", # structural prefixes compiled for bound requests
    "structural_binds",    # parameterised requests served by binding
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (cumulative, Prometheus-style)."""

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self._counts = [0] * (len(self.buckets) + 1)   # +1: overflow
        self.count = 0
        self.total_s = 0.0

    def observe(self, seconds: float) -> None:
        self._counts[bisect.bisect_left(self.buckets, seconds)] += 1
        self.count += 1
        self.total_s += seconds

    def snapshot(self) -> dict:
        """``{"count", "total_s", "buckets": {"le_0.001": n, ...}}``.

        Bucket values are cumulative; ``le_inf`` always equals
        ``count``.
        """
        buckets: dict[str, int] = {}
        running = 0
        for upper, n in zip(self.buckets, self._counts):
            running += n
            buckets[f"le_{upper:g}"] = running
        buckets["le_inf"] = self.count
        return {"count": self.count, "total_s": self.total_s,
                "buckets": buckets}


class ServiceMetrics:
    """Thread-safe counters + aggregates behind ``/metrics``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.monotonic()
        self.counters = {name: 0 for name in COUNTER_NAMES}
        self.passes: dict[str, dict[str, float]] = {}
        self.request_latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] += amount

    def observe_response(self, response, queue_wait_s: float,
                         service_s: float) -> None:
        """Fold one executed job's response into the aggregates."""
        with self._lock:
            self.counters["compiled"] += 1
            if response.error is not None:
                self.counters["failed"] += 1
            aggregate_pass_timings([response.timings], into=self.passes)
            self.queue_wait.observe(queue_wait_s)
            self.request_latency.observe(queue_wait_s + service_s)

    def snapshot(self) -> dict:
        """The JSON payload core (the service adds queue/cache views)."""
        with self._lock:
            passes = {
                name: {"count": entry["count"],
                       "total_s": entry["total_s"],
                       "mean_s": entry["total_s"] / entry["count"]}
                for name, entry in self.passes.items()
            }
            return {
                "uptime_s": time.monotonic() - self.started_at,
                "requests": dict(self.counters),
                "passes": passes,
                "latency": {
                    "request": self.request_latency.snapshot(),
                    "queue_wait": self.queue_wait.snapshot(),
                },
            }
