"""Service metrics: counters, pass-timing aggregates, latency histograms.

One :class:`ServiceMetrics` instance lives inside the compile service;
worker threads fold every served response into it and the ``/metrics``
endpoint snapshots it as plain JSON.  Pass timings aggregate through
:func:`repro.analysis.engine.aggregate_pass_timings` -- the same fold
``sweep --pass-timings`` reports -- and cache counters are *not* kept
here: the server reads them from :meth:`ArtifactCache.stats`, the one
shared counter snapshot API.
"""

from __future__ import annotations

import bisect
import threading
import time

from repro.analysis.engine import aggregate_pass_timings

#: Prometheus-style upper bounds (seconds) for the latency histograms.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0)

#: Every counter the service increments, so ``/metrics`` always exports
#: the full schema (zeros included) and clients never need existence
#: checks.
COUNTER_NAMES = (
    "received",            # requests accepted by /compile and /batch
    "submitted",           # jobs actually enqueued
    "coalesced",           # requests attached to an in-flight identical job
    "deduplicated",        # batch-internal repeats served from one compile
    "compiled",            # jobs executed by a worker
    "failed",              # error-carrying responses produced
    "timed_out",           # jobs cancelled by queue or waiter timeout
    "rejected_queue_full", # requests refused with backpressure (429)
    "cancelled",           # jobs discarded by a hard (non-drain) shutdown
    "structural_compiles", # structural prefixes compiled for bound requests
    "structural_binds",    # parameterised requests served by binding
    "worker_crashes",      # process children that died mid-compile
    "pool_restarts",       # process pools replaced after a crash
    "requeued",            # crashed jobs resubmitted within the retry budget
    "poisoned",            # jobs quarantined after exhausting retries
    "poison_rejected",     # requests fast-failed against the quarantine
    "cancelled_running",   # running compiles stopped at a pass boundary
    "disconnected",        # waiters lost to a client disconnect
    "journal_write_errors",# journal appends that failed (served anyway)
    "journal_replayed",    # jobs resubmitted from the journal on startup
    "journal_replay_skipped",  # journal records that could not be replayed
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (cumulative, Prometheus-style)."""

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self._counts = [0] * (len(self.buckets) + 1)   # +1: overflow
        self.count = 0
        self.total_s = 0.0

    def observe(self, seconds: float) -> None:
        self._counts[bisect.bisect_left(self.buckets, seconds)] += 1
        self.count += 1
        self.total_s += seconds

    def snapshot(self) -> dict:
        """``{"count", "total_s", "buckets": {"le_0.001": n, ...}}``.

        Bucket values are cumulative; ``le_inf`` always equals
        ``count``.
        """
        buckets: dict[str, int] = {}
        running = 0
        for upper, n in zip(self.buckets, self._counts):
            running += n
            buckets[f"le_{upper:g}"] = running
        buckets["le_inf"] = self.count
        return {"count": self.count, "total_s": self.total_s,
                "buckets": buckets}


class ServiceMetrics:
    """Thread-safe counters + aggregates behind ``/metrics``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.monotonic()
        self.counters = {name: 0 for name in COUNTER_NAMES}
        self.passes: dict[str, dict[str, float]] = {}
        self.request_latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] += amount

    def observe_response(self, response, queue_wait_s: float,
                         service_s: float) -> None:
        """Fold one executed job's response into the aggregates."""
        with self._lock:
            self.counters["compiled"] += 1
            if response.error is not None:
                self.counters["failed"] += 1
            aggregate_pass_timings([response.timings], into=self.passes)
            self.queue_wait.observe(queue_wait_s)
            self.request_latency.observe(queue_wait_s + service_s)

    def mean_request_s(self) -> float | None:
        """Mean end-to-end request latency, or None before any request.

        The server's ``Retry-After`` estimate: queue depth times this,
        divided by the worker count.
        """
        with self._lock:
            if self.request_latency.count == 0:
                return None
            return self.request_latency.total_s / self.request_latency.count

    def snapshot(self) -> dict:
        """The JSON payload core (the service adds queue/cache views)."""
        with self._lock:
            passes = {
                name: {"count": entry["count"],
                       "total_s": entry["total_s"],
                       "mean_s": entry["total_s"] / entry["count"]}
                for name, entry in self.passes.items()
            }
            return {
                "uptime_s": time.monotonic() - self.started_at,
                "requests": dict(self.counters),
                "passes": passes,
                "latency": {
                    "request": self.request_latency.snapshot(),
                    "queue_wait": self.queue_wait.snapshot(),
                },
            }


# ----------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4) over the JSON snapshot
# ----------------------------------------------------------------------
_LABEL_ESCAPES = str.maketrans({"\\": r"\\", '"': r"\"", "\n": r"\n"})


def _label(value: str) -> str:
    return '"' + str(value).translate(_LABEL_ESCAPES) + '"'


def _histogram_lines(name: str, snap: dict) -> list[str]:
    """Render one :meth:`LatencyHistogram.snapshot` as a histogram."""
    lines = [f"# TYPE {name} histogram"]
    for bucket, count in snap.get("buckets", {}).items():
        upper = bucket[len("le_"):]
        le = "+Inf" if upper == "inf" else upper
        lines.append(f"{name}_bucket{{le={_label(le)}}} {count}")
    lines.append(f"{name}_sum {snap.get('total_s', 0.0):.9g}")
    lines.append(f"{name}_count {snap.get('count', 0)}")
    return lines


def prometheus_text(payload: dict) -> str:
    """Render a ``/metrics`` JSON payload as Prometheus text exposition.

    An adapter, not a second registry: it walks the exact dict
    :meth:`ServiceMetrics.snapshot` (plus the service's queue/cache
    sections) already exports, so the two formats can never disagree.
    Served by ``GET /metrics?format=prometheus``.
    """
    lines: list[str] = []
    lines.append("# TYPE repro_uptime_seconds gauge")
    lines.append(f"repro_uptime_seconds {payload.get('uptime_s', 0.0):.9g}")
    lines.append("# TYPE repro_requests_total counter")
    for kind, count in sorted(payload.get("requests", {}).items()):
        lines.append(f"repro_requests_total{{kind={_label(kind)}}} {count}")
    queue = payload.get("queue", {})
    if queue:
        for gauge in ("depth", "capacity", "workers", "running"):
            if gauge in queue:
                lines.append(f"# TYPE repro_queue_{gauge} gauge")
                lines.append(f"repro_queue_{gauge} {queue[gauge]}")
        if "draining" in queue:
            lines.append("# TYPE repro_queue_draining gauge")
            lines.append(f"repro_queue_draining "
                         f"{1 if queue['draining'] else 0}")
    passes = payload.get("passes", {})
    if passes:
        lines.append("# TYPE repro_pass_runs_total counter")
        for name, entry in sorted(passes.items()):
            lines.append(f"repro_pass_runs_total"
                         f"{{pass={_label(name)}}} {entry['count']}")
        lines.append("# TYPE repro_pass_seconds_total counter")
        for name, entry in sorted(passes.items()):
            lines.append(f"repro_pass_seconds_total"
                         f"{{pass={_label(name)}}} {entry['total_s']:.9g}")
    latency = payload.get("latency", {})
    if "request" in latency:
        lines.extend(_histogram_lines("repro_request_latency_seconds",
                                      latency["request"]))
    if "queue_wait" in latency:
        lines.extend(_histogram_lines("repro_queue_wait_seconds",
                                      latency["queue_wait"]))
    cache = payload.get("cache", {})
    if cache:
        lines.append("# TYPE repro_cache_hits_total counter")
        for tenant, stats in sorted(cache.items()):
            lines.append(f"repro_cache_hits_total"
                         f"{{tenant={_label(tenant)}}} "
                         f"{stats.get('hits', 0)}")
        lines.append("# TYPE repro_cache_misses_total counter")
        for tenant, stats in sorted(cache.items()):
            lines.append(f"repro_cache_misses_total"
                         f"{{tenant={_label(tenant)}}} "
                         f"{stats.get('misses', 0)}")
        lines.append("# TYPE repro_cache_memory_entries gauge")
        for tenant, stats in sorted(cache.items()):
            lines.append(f"repro_cache_memory_entries"
                         f"{{tenant={_label(tenant)}}} "
                         f"{stats.get('memory_entries', 0)}")
    return "\n".join(lines) + "\n"
