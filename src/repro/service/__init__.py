"""Batch compilation service: the request-serving front end.

:mod:`repro.service.batch` turns the compiler registry plus the
content-addressed cache (:mod:`repro.cache`) into something that serves
repeated compilation traffic: callers describe work as
:class:`CompileRequest` values, and a :class:`BatchCompiler`
deduplicates identical requests, shares one artifact cache across the
batch, and fans independent requests out over worker processes.

CLI: ``python -m repro batch --requests FILE.json --jobs N --cache DIR``.
"""

from repro.service.batch import (
    BatchCompiler,
    BatchSummary,
    CompileRequest,
    CompileResponse,
    execute_request,
    request_from_dict,
)

__all__ = [
    "BatchCompiler",
    "BatchSummary",
    "CompileRequest",
    "CompileResponse",
    "execute_request",
    "request_from_dict",
]
