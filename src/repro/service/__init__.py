"""Compilation service: batch front end, server, and client SDK.

Three layers over the compiler registry plus the content-addressed
cache (:mod:`repro.cache`):

* :mod:`repro.service.batch` -- callers describe work as
  :class:`CompileRequest` values; a :class:`BatchCompiler` deduplicates
  identical requests, shares one artifact cache across the batch, and
  fans independent requests out over worker processes.
* :mod:`repro.service.server` -- compilation as a service: an asyncio
  HTTP front end over a bounded priority :class:`JobQueue` with
  in-flight coalescing, per-tenant cache salting, a ``/metrics``
  endpoint and graceful shutdown.
* :mod:`repro.service.client` -- :class:`CompileClient`, a retrying
  stdlib HTTP client for the server.

Fault tolerance lives in two side modules: :mod:`repro.service.journal`
(the accepted-job write-ahead log behind ``repro serve --journal``) and
:mod:`repro.service.faults` (the injectable failure hooks the chaos
tests drive).

CLI: ``python -m repro batch --requests FILE.json --jobs N --cache DIR``
and ``python -m repro serve --port 8000 --jobs 2 --cache DIR``.
"""

from repro.service.batch import (
    BatchCompiler,
    BatchSummary,
    CompileRequest,
    CompileResponse,
    assemble_responses,
    compute_request_keys,
    error_response,
    execute_request,
    request_from_dict,
)
from repro.service.client import CompileClient, ServiceError
from repro.service.faults import FaultPlan
from repro.service.journal import JobJournal
from repro.service.metrics import ServiceMetrics
from repro.service.queue import (
    Job,
    JobQueue,
    QueueClosedError,
    QueueFullError,
)
from repro.service.server import (
    CompileServer,
    CompileService,
    ServerThread,
    ServiceConfig,
    serve,
)

__all__ = [
    "BatchCompiler",
    "BatchSummary",
    "CompileClient",
    "CompileRequest",
    "CompileResponse",
    "CompileServer",
    "CompileService",
    "FaultPlan",
    "Job",
    "JobJournal",
    "JobQueue",
    "QueueClosedError",
    "QueueFullError",
    "ServerThread",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "assemble_responses",
    "compute_request_keys",
    "error_response",
    "execute_request",
    "request_from_dict",
    "serve",
]
