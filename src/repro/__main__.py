"""Command-line interface: compile a benchmark and print the metrics.

Examples::

    python -m repro --benchmark NNN_Heisenberg --qubits 10 \
        --device montreal --gateset CNOT
    python -m repro --benchmark QAOA-REG-3 --qubits 12 --device sycamore \
        --gateset SYC --compare
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.harness import build_step
from repro.baselines import compile_nomap, compile_qiskit_like, compile_tket_like
from repro.core.compiler import TwoQANCompiler
from repro.devices.library import all_to_all, by_name


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="2QAN reproduction: compile 2-local Hamiltonian "
                    "simulation benchmarks onto NISQ devices",
    )
    parser.add_argument("--benchmark", default="NNN_Heisenberg",
                        choices=["NNN_Heisenberg", "NNN_XY", "NNN_Ising",
                                 "QAOA-REG-3"],
                        help="benchmark family")
    parser.add_argument("--qubits", type=int, default=10,
                        help="problem size")
    parser.add_argument("--device", default="montreal",
                        choices=["montreal", "sycamore", "aspen",
                                 "manhattan", "all-to-all"],
                        help="target device")
    parser.add_argument("--gateset", default="CNOT",
                        choices=["CNOT", "CZ", "SYC", "ISWAP"],
                        help="hardware two-qubit basis")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mapping-trials", type=int, default=5,
                        help="Tabu restarts (paper uses 5)")
    parser.add_argument("--compare", action="store_true",
                        help="also run the baseline compilers")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    step = build_step(args.benchmark, args.qubits, args.seed)
    if args.device == "all-to-all":
        device = all_to_all(args.qubits)
    else:
        device = by_name(args.device)
    if args.qubits > device.n_qubits:
        print(f"error: {args.qubits} qubits exceed {device.name}",
              file=sys.stderr)
        return 1

    compiler = TwoQANCompiler(device, args.gateset, seed=args.seed,
                              mapping_trials=args.mapping_trials)
    result = compiler.compile(step)
    print(f"{args.benchmark} n={args.qubits} on {device.name} "
          f"({args.gateset} basis)")
    print(f"  2QAN: swaps={result.n_swaps} dressed={result.n_dressed} "
          f"2q-gates={result.metrics.n_two_qubit_gates} "
          f"2q-depth={result.metrics.two_qubit_depth} "
          f"depth={result.metrics.total_depth}")
    if args.compare:
        nomap = compile_nomap(step, args.gateset, seed=args.seed)
        tket = compile_tket_like(step, device, args.gateset, seed=args.seed)
        qiskit = compile_qiskit_like(step, device, args.gateset,
                                     seed=args.seed)
        for name, r in (("NoMap", nomap), ("tket-like", tket),
                        ("qiskit-like", qiskit)):
            print(f"  {name}: swaps={r.n_swaps} "
                  f"2q-gates={r.metrics.n_two_qubit_gates} "
                  f"2q-depth={r.metrics.two_qubit_depth}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
