"""Command-line interface: compile a benchmark and print the metrics.

Examples::

    python -m repro --benchmark NNN_Heisenberg --qubits 10 \
        --device montreal --gateset CNOT
    python -m repro --benchmark QAOA-REG-3 --qubits 12 --device sycamore \
        --gateset SYC --compare
    python -m repro compile --compiler tket --benchmark NNN_Ising \
        --qubits 8 --device aspen
    python -m repro compile --list-compilers
    python -m repro sweep --benchmark NNN_Ising --device aspen \
        --gateset CNOT --sizes 6,8,10 --jobs 4 --store results/store
    python -m repro batch --requests requests.json --jobs 4 \
        --cache results/cache --json
    python -m repro serve --port 8000 --jobs 2 --cache results/cache
    python -m repro lint --json --select RPR001,RPR004
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

from repro.analysis.harness import (
    SweepConfig,
    build_step,
    build_symbolic_step,
    format_cache_stats,
    format_pass_timings,
    format_rows,
)
from repro.core.registry import (
    compiler_names,
    compiler_specs,
    get_compiler,
    resolve_spec,
)
from repro.devices.library import all_to_all, by_name

BENCHMARKS = ["NNN_Heisenberg", "NNN_XY", "NNN_Ising", "QAOA-REG-3",
              "QAOA-WR-3", "QAOA-ER"]
DEVICES = ["montreal", "sycamore", "aspen", "manhattan", "all-to-all"]
GATESETS = ["CNOT", "CZ", "SYC", "ISWAP"]
SWEEP_COMPILERS = list(compiler_names())
COMPILER_CHOICES = sorted(
    {name for spec in compiler_specs() for name in (spec.name, *spec.aliases)}
)
SWEEP_METRICS = ["n_swaps", "n_dressed", "n_two_qubit_gates",
                 "two_qubit_depth", "total_depth", "seconds"]


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="2QAN reproduction: compile 2-local Hamiltonian "
                    "simulation benchmarks onto NISQ devices",
        epilog="subcommands: 'repro compile ...' compiles one benchmark "
               "with any registered compiler; 'repro bind ...' compiles "
               "a benchmark's structure once and binds angle sets at "
               "request speed; 'repro sweep ...' runs a parallel, "
               "resumable (sizes x instances x compilers) sweep; 'repro "
               "batch ...' serves a JSON file of compile requests "
               "through the content-addressed cache; 'repro serve ...' "
               "runs the HTTP compile server; 'repro lint ...' runs "
               "the static contract checkers; see 'repro compile "
               "--help' / 'repro bind --help' / 'repro sweep --help' / "
               "'repro batch --help' / 'repro serve --help' / 'repro "
               "lint --help'",
    )
    parser.add_argument("--benchmark", default="NNN_Heisenberg",
                        choices=BENCHMARKS,
                        help="benchmark family")
    parser.add_argument("--qubits", type=int, default=10,
                        help="problem size")
    parser.add_argument("--device", default="montreal",
                        choices=DEVICES,
                        help="target device")
    parser.add_argument("--gateset", default="CNOT",
                        choices=GATESETS,
                        help="hardware two-qubit basis")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mapping-trials", type=int, default=5,
                        help="Tabu restarts (paper uses 5)")
    parser.add_argument("--mapping-jobs", type=int, default=1,
                        help="processes for the mapping trials "
                             "(identical result, less wall time)")
    parser.add_argument("--compare", action="store_true",
                        help="also run the baseline compilers")
    return parser


def _csv(text: str) -> list[str]:
    return [item for item in (p.strip() for p in text.split(",")) if item]


def _parse_binding(text: str) -> dict[str, float]:
    """Parse ``gamma=0.4,beta=1.1`` into an angle binding."""
    binding: dict[str, float] = {}
    for part in _csv(text):
        name, sep, value = part.partition("=")
        name = name.strip()
        if not sep or not name:
            raise ValueError(
                f"bad binding {part!r}; expected name=value"
            )
        try:
            binding[name] = float(value)
        except ValueError:
            raise ValueError(
                f"bad binding value in {part!r}; expected a number"
            ) from None
    if not binding:
        raise ValueError("empty binding; expected name=value[,name=value]")
    return binding


def _resolve_device(name: str, max_qubits: int):
    """Build the target device, or None (with a message) if too small.

    ``all-to-all`` is sized to ``max_qubits``; note that for stored
    sweeps the device (including its size) is part of the store key, so
    growing an all-to-all sweep's size grid starts a fresh store file.
    """
    device = all_to_all(max_qubits) if name == "all-to-all" else by_name(name)
    if max_qubits > device.n_qubits:
        print(f"error: {max_qubits} qubits exceed {device.name}",
              file=sys.stderr)
        return None
    return device


# ----------------------------------------------------------------------
# repro compile
# ----------------------------------------------------------------------
def make_compile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro compile",
        description="Compile one benchmark instance with any compiler "
                    "from the registry and print metrics + pass timings",
    )
    parser.add_argument("--compiler", default="2qan",
                        choices=COMPILER_CHOICES,
                        help="registry name (or alias) of the compiler")
    parser.add_argument("--benchmark", default="NNN_Heisenberg",
                        choices=BENCHMARKS, help="benchmark family")
    parser.add_argument("--qubits", type=int, default=10,
                        help="problem size")
    parser.add_argument("--device", default="montreal", choices=DEVICES,
                        help="target device")
    parser.add_argument("--gateset", default="CNOT", choices=GATESETS,
                        help="hardware two-qubit basis")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bind", default=None, metavar="NAME=VAL[,...]",
                        help="compile the benchmark's symbolic form and "
                             "bind these angles (e.g. gamma=0.4,beta=1.1); "
                             "bit-identical to compiling the concrete "
                             "circuit")
    parser.add_argument("--json", action="store_true",
                        help="emit metrics/timings as JSON")
    parser.add_argument("--list-compilers", action="store_true",
                        help="list registered compilers and exit")
    return parser


def _print_compiler_list() -> None:
    print("registered compilers:")
    for spec in compiler_specs():
        alias = (f" (aliases: {', '.join(spec.aliases)})"
                 if spec.aliases else "")
        print(f"  {spec.name:14s} {spec.summary}{alias}")


def compile_main(argv: list[str]) -> int:
    args = make_compile_parser().parse_args(argv)
    if args.list_compilers:
        _print_compiler_list()
        return 0
    spec = resolve_spec(args.compiler)
    if spec.requires_device:
        device = _resolve_device(args.device, args.qubits)
        if device is None:
            return 1
    else:
        # NoMap/Paulihedral compile on all-to-all connectivity whatever
        # device is named; size the label accordingly instead of
        # rejecting problems larger than the named device.
        device = all_to_all(args.qubits)
    gateset = args.gateset if spec.uses_gateset else None
    binding = None
    if args.bind is not None:
        try:
            binding = _parse_binding(args.bind)
        except ValueError as exc:
            print(f"error: bad --bind: {exc}", file=sys.stderr)
            return 1
        step = build_symbolic_step(args.benchmark, args.qubits, args.seed)
    else:
        step = build_step(args.benchmark, args.qubits, args.seed)
    compiler = get_compiler(args.compiler, device=device,
                            gateset=args.gateset, seed=args.seed)
    from repro.synthesis.templates import DEFAULT_TEMPLATES

    tpl_hits_before = DEFAULT_TEMPLATES.hits
    tpl_misses_before = DEFAULT_TEMPLATES.misses
    try:
        result = compiler.compile(step, binding=binding)
    except ValueError as exc:
        # e.g. ic_qaoa on a benchmark without mutually commuting layers,
        # or a --bind that misses a parameter the benchmark carries
        print(f"error: {exc}", file=sys.stderr)
        return 1
    cache_stats = {
        "decompose_hits": compiler.cache.hits,
        "decompose_misses": compiler.cache.misses,
        "template_hits": DEFAULT_TEMPLATES.hits - tpl_hits_before,
        "template_misses": DEFAULT_TEMPLATES.misses - tpl_misses_before,
    }
    metrics = result.metrics
    if args.json:
        payload = {
            "compiler": args.compiler,
            "benchmark": args.benchmark,
            "n_qubits": args.qubits,
            "device": device.name,
            "gateset": gateset,
            "seed": args.seed,
            **({"parameters": binding} if binding else {}),
            "n_swaps": metrics.n_swaps,
            "n_dressed": metrics.n_dressed,
            "n_two_qubit_gates": metrics.n_two_qubit_gates,
            "two_qubit_depth": metrics.two_qubit_depth,
            "total_depth": metrics.total_depth,
            "qap_cost": (None if math.isnan(result.qap_cost)
                         else result.qap_cost),
            "timings": result.timings,
            "cache_stats": cache_stats,
        }
        print(json.dumps(payload, indent=2))
        return 0
    basis = (f"{gateset} basis" if gateset is not None
             else "idealised CNOT cost model")
    print(f"{args.benchmark} n={args.qubits} on {device.name} ({basis})")
    if binding:
        print("  bound: " + ", ".join(f"{name}={value:g}"
                                      for name, value in binding.items()))
    print(f"  {args.compiler}: swaps={metrics.n_swaps} "
          f"dressed={metrics.n_dressed} "
          f"2q-gates={metrics.n_two_qubit_gates} "
          f"2q-depth={metrics.two_qubit_depth} "
          f"depth={metrics.total_depth}")
    if not math.isnan(result.qap_cost):
        print(f"  qap-cost={result.qap_cost:.0f}")
    print("  pass timings: " + ", ".join(
        f"{name}={seconds * 1000:.0f}ms"
        for name, seconds in result.timings.items()))
    return 0


# ----------------------------------------------------------------------
# repro bind
# ----------------------------------------------------------------------
def make_bind_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bind",
        description="Compile a benchmark's structure once, then bind one "
                    "or more angle sets at request speed; every bound "
                    "circuit is bit-identical to a from-scratch compile "
                    "of the concrete benchmark",
    )
    parser.add_argument("--compiler", default="2qan",
                        choices=COMPILER_CHOICES,
                        help="registry name (or alias) of the compiler")
    parser.add_argument("--benchmark", default="QAOA-REG-3",
                        choices=BENCHMARKS, help="benchmark family")
    parser.add_argument("--qubits", type=int, default=10,
                        help="problem size")
    parser.add_argument("--device", default="montreal", choices=DEVICES,
                        help="target device")
    parser.add_argument("--gateset", default="CNOT", choices=GATESETS,
                        help="hardware two-qubit basis")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bind", action="append", required=True,
                        metavar="NAME=VAL[,...]",
                        help="one angle set, e.g. gamma=0.4,beta=1.1; "
                             "repeat the flag for several sets")
    parser.add_argument("--json", action="store_true",
                        help="emit per-binding metrics as JSON")
    return parser


def bind_main(argv: list[str]) -> int:
    import time

    from repro.core.bind import compile_structural

    args = make_bind_parser().parse_args(argv)
    try:
        bindings = [_parse_binding(text) for text in args.bind]
    except ValueError as exc:
        print(f"error: bad --bind: {exc}", file=sys.stderr)
        return 1
    spec = resolve_spec(args.compiler)
    if spec.requires_device:
        device = _resolve_device(args.device, args.qubits)
        if device is None:
            return 1
    else:
        device = all_to_all(args.qubits)
    gateset = args.gateset if spec.uses_gateset else None
    step = build_symbolic_step(args.benchmark, args.qubits, args.seed)
    compiler = get_compiler(args.compiler, device=device,
                            gateset=args.gateset, seed=args.seed)
    start = time.perf_counter()
    try:
        structural = compile_structural(compiler, step)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    structural_seconds = time.perf_counter() - start

    payloads = []
    lines = []
    for binding in bindings:
        start = time.perf_counter()
        try:
            result = structural.bind(binding)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        seconds = time.perf_counter() - start
        metrics = result.metrics
        bound = ", ".join(f"{name}={value:g}"
                          for name, value in binding.items())
        lines.append(f"  bind {bound}: swaps={metrics.n_swaps} "
                     f"dressed={metrics.n_dressed} "
                     f"2q-gates={metrics.n_two_qubit_gates} "
                     f"2q-depth={metrics.two_qubit_depth} "
                     f"depth={metrics.total_depth} "
                     f"({seconds * 1000:.0f}ms)")
        payloads.append({
            "parameters": binding,
            "n_swaps": metrics.n_swaps,
            "n_dressed": metrics.n_dressed,
            "n_two_qubit_gates": metrics.n_two_qubit_gates,
            "two_qubit_depth": metrics.two_qubit_depth,
            "total_depth": metrics.total_depth,
            "qap_cost": (None if math.isnan(result.qap_cost)
                         else result.qap_cost),
            "seconds": seconds,
        })
    if args.json:
        print(json.dumps({
            "compiler": args.compiler,
            "benchmark": args.benchmark,
            "n_qubits": args.qubits,
            "device": device.name,
            "gateset": gateset,
            "seed": args.seed,
            "structural_passes": list(structural.prefix_names),
            "structural_seconds": structural_seconds,
            "bindings": payloads,
        }, indent=2))
        return 0
    basis = (f"{gateset} basis" if gateset is not None
             else "idealised CNOT cost model")
    print(f"{args.benchmark} n={args.qubits} on {device.name} ({basis})")
    print(f"  structural: {'+'.join(structural.prefix_names)} "
          f"({structural_seconds * 1000:.0f}ms, parameters: "
          f"{', '.join(sorted(structural.parameters)) or 'none'})")
    for line in lines:
        print(line)
    return 0


# ----------------------------------------------------------------------
# repro sweep
# ----------------------------------------------------------------------
def make_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Run a (sizes x instances x compilers) sweep on the "
                    "parallel engine with an optional persistent store",
    )
    parser.add_argument("--benchmark", default="NNN_Heisenberg",
                        choices=BENCHMARKS, help="benchmark family")
    parser.add_argument("--device", default="montreal", choices=DEVICES,
                        help="target device")
    parser.add_argument("--gateset", default="CNOT", choices=GATESETS,
                        help="hardware two-qubit basis")
    parser.add_argument("--sizes", default="6,10,14",
                        help="comma-separated problem sizes")
    parser.add_argument("--compilers", default="2qan,tket,qiskit,nomap",
                        help=f"comma-separated subset of {SWEEP_COMPILERS}")
    parser.add_argument("--instances", type=int, default=1,
                        help="random instances per size (QAOA)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: all cores)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="persist/resume rows under this directory")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="share stage artifacts across tasks via a "
                             "content-addressed cache in this directory")
    parser.add_argument("--json", action="store_true",
                        help="emit raw rows as JSON instead of tables")
    parser.add_argument("--metrics",
                        default="n_swaps,n_two_qubit_gates,two_qubit_depth",
                        help=f"comma-separated subset of {SWEEP_METRICS} "
                             "for the text tables")
    parser.add_argument("--pass-timings", action="store_true",
                        help="also print mean per-pass seconds per compiler")
    return parser


def sweep_main(argv: list[str]) -> int:
    from repro.analysis.engine import default_jobs, open_store, run_engine
    from repro.analysis.store import row_to_dict, source_digest

    args = make_sweep_parser().parse_args(argv)
    try:
        sizes = tuple(dict.fromkeys(int(s) for s in _csv(args.sizes)))
    except ValueError:
        print(f"error: bad --sizes {args.sizes!r}", file=sys.stderr)
        return 1
    metrics = _csv(args.metrics)
    bad_metrics = [m for m in metrics if m not in SWEEP_METRICS]
    if bad_metrics:
        print(f"error: bad --metrics (unknown: {bad_metrics}; choose "
              f"from {SWEEP_METRICS})", file=sys.stderr)
        return 1
    if args.instances < 1:
        print("error: --instances must be >= 1", file=sys.stderr)
        return 1
    if args.jobs is not None and args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 1
    if not sizes:
        print("error: --sizes must name at least one size", file=sys.stderr)
        return 1
    requested = _csv(args.compilers)
    unknown = [c for c in requested if c not in COMPILER_CHOICES]
    if not requested or unknown:
        print(f"error: bad --compilers (unknown: {unknown}; "
              f"choose from {COMPILER_CHOICES})", file=sys.stderr)
        return 1
    # canonicalize aliases so 'tket,order' is one compiler, not two, and
    # store keys stay stable across spellings
    compilers = tuple(dict.fromkeys(
        resolve_spec(c).name for c in requested
    ))
    if any(resolve_spec(c).requires_device for c in compilers):
        device = _resolve_device(args.device, max(sizes))
        if device is None:
            return 1
    else:
        # all requested compilers ignore the device: compile on
        # all-to-all connectivity at any size instead of rejecting
        # problems larger than the named device
        device = all_to_all(max(sizes))

    config = SweepConfig(
        benchmark=args.benchmark,
        device=device,
        gateset=args.gateset,
        sizes=sizes,
        compilers=compilers,
        instances=args.instances,
        seed=args.seed,
    )
    jobs = args.jobs if args.jobs is not None else default_jobs()
    # salt the store with a source digest so rows computed by an older
    # version of the compiler are never replayed as fresh results
    store = (open_store(args.store, config, salt=source_digest())
             if args.store else None)
    try:
        # the engine salts the cache directory with a source digest
        # itself: artifacts never outlive the code that produced them
        rows = run_engine(config, jobs=jobs, store=store,
                          artifact_cache=args.cache or None)
    except ValueError as exc:
        # e.g. ic_qaoa on a benchmark without mutually commuting layers
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps([row_to_dict(row) for row in rows], indent=2))
        return 0
    print(f"{args.benchmark} on {device.name} ({args.gateset} basis), "
          f"{len(rows)} rows, jobs={jobs}"
          + (f", store={store.path}" if store else "")
          + (f", cache={args.cache}" if args.cache else ""))
    for metric in metrics:
        print(f"\n[{metric}]")
        print(format_rows(rows, metric, compilers))
    if args.pass_timings:
        print("\n[pass seconds]")
        print(format_pass_timings(rows, compilers))
        print("\n[cache counters]")
        print(format_cache_stats(rows, compilers))
    return 0


# ----------------------------------------------------------------------
# repro batch
# ----------------------------------------------------------------------
def make_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Serve a JSON file of compile requests: deduplicate, "
                    "share one content-addressed artifact cache across "
                    "the batch, fan independent requests out over "
                    "processes",
        epilog="the requests file holds a JSON list of objects with any "
               "of: compiler, benchmark, n_qubits, device, gateset, "
               "seed, qaoa_degree, parameters (missing fields take the "
               "'repro compile' defaults; parameters is an angle object "
               "such as {\"gamma\": 0.4, \"beta\": 1.1} -- requests "
               "differing only in angle values share one structural "
               "compilation)",
    )
    parser.add_argument("--requests", required=True, metavar="FILE",
                        help="JSON file with the request list")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for unique requests")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="persist stage artifacts in this directory "
                             "(shared across runs and processes)")
    parser.add_argument("--json", action="store_true",
                        help="emit responses as JSON (deterministic: "
                             "identical for cold and warm caches)")
    return parser


def batch_main(argv: list[str]) -> int:
    from repro.service.batch import BatchCompiler, load_requests

    args = make_batch_parser().parse_args(argv)
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 1
    try:
        requests = load_requests(args.requests)
    except (OSError, ValueError, TypeError) as exc:
        print(f"error: bad --requests file: {exc}", file=sys.stderr)
        return 1
    if not requests:
        print("error: requests file holds no requests", file=sys.stderr)
        return 1
    def label(request) -> str:
        return (f"{request.compiler} {request.benchmark} "
                f"n={request.n_qubits} seed={request.seed}")

    # BatchCompiler salts the directory with a source digest itself
    service = BatchCompiler(jobs=args.jobs, cache_dir=args.cache or None)
    responses, summary = service.run(requests)
    # the summary carries wall times and cache counters, which differ
    # between runs; keep stdout deterministic by reporting it on stderr.
    # per-request failures are isolated into error-carrying responses;
    # report them on stderr too and signal with the exit code.
    print(summary.line(), file=sys.stderr)
    for response in responses:
        if response.failed and not response.deduplicated:
            print(f"error: {label(response.request)}: {response.error}",
                  file=sys.stderr)
    exit_code = 1 if summary.n_failed else 0
    if args.json:
        print(json.dumps([r.to_dict() for r in responses], indent=2))
        return exit_code
    for response in responses:
        note = " (deduplicated)" if response.deduplicated else ""
        if response.failed:
            print(f"{label(response.request)}: "
                  f"FAILED ({response.error}){note}")
            continue
        print(f"{label(response.request)}: "
              f"swaps={response.n_swaps} "
              f"2q-gates={response.n_two_qubit_gates} "
              f"2q-depth={response.two_qubit_depth} "
              f"depth={response.total_depth}{note}")
    return exit_code


# ----------------------------------------------------------------------
# repro lint
# ----------------------------------------------------------------------
def make_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Run the domain contract checkers (pass "
                    "reads/writes, fingerprint coverage, metrics "
                    "schema, compile-path determinism, async hygiene) "
                    "over src/repro; exits 1 when any finding remains",
        epilog="findings print as 'path:line: CHECK [severity] "
               "message'; --json emits the stable schema (version 1) "
               "for tooling",
    )
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="repo root to scan (default: autodetected "
                             "from the installed repro package)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON (stable schema)")
    parser.add_argument("--select", default=None, metavar="ID[,ID...]",
                        help="run only these check ids (e.g. "
                             "RPR001,RPR004)")
    parser.add_argument("--ignore", default=None, metavar="ID[,ID...]",
                        help="skip these check ids")
    parser.add_argument("--diff-base", default=None, metavar="REF",
                        help="report only findings in files changed "
                             "since this git ref (checkers still see "
                             "the whole tree, so cross-file contracts "
                             "stay sound)")
    parser.add_argument("--list-checks", action="store_true",
                        help="list registered checks and exit")
    return parser


def _changed_paths(repo_root: Path, base: str) -> set[str] | None:
    """Repo-relative paths changed since ``base``, or None on error."""
    import subprocess

    proc = subprocess.run(
        ["git", "diff", "--name-only", base, "--"],
        cwd=repo_root, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        print(f"error: git diff --name-only {base} failed: "
              f"{proc.stderr.strip()}", file=sys.stderr)
        return None
    return {line.strip() for line in proc.stdout.splitlines()
            if line.strip()}


def lint_main(argv: list[str]) -> int:
    from repro.lint import Project, all_checkers, run_lint

    args = make_lint_parser().parse_args(argv)
    if args.list_checks:
        for check_id, cls in all_checkers().items():
            print(f"{check_id}  {cls.name}: {cls.description}")
        return 0
    if args.root is not None:
        repo_root = Path(args.root)
    else:
        import repro

        # src/repro/__init__.py -> src/repro -> src -> repo root
        repo_root = Path(repro.__file__).resolve().parents[2]
    if not (repo_root / "src" / "repro").is_dir():
        print(f"error: {repo_root} has no src/repro tree (pass --root)",
              file=sys.stderr)
        return 2
    project = Project.from_root(repo_root)
    try:
        findings = run_lint(
            project,
            select=_csv(args.select) if args.select else None,
            ignore=_csv(args.ignore) if args.ignore else None,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.diff_base is not None:
        changed = _changed_paths(repo_root, args.diff_base)
        if changed is None:
            return 2
        findings = [f for f in findings if f.path in changed]
    if args.json:
        checks = [
            {"id": check_id, "name": cls.name,
             "description": cls.description}
            for check_id, cls in all_checkers().items()
        ]
        print(json.dumps({
            "version": 1,
            "checks": checks,
            "findings": [f.to_dict() for f in findings],
            "summary": {
                "files": len(project.files),
                "errors": sum(f.severity == "error" for f in findings),
                "warnings": sum(f.severity == "warning"
                                for f in findings),
            },
        }, indent=2))
    else:
        for finding in findings:
            print(finding.render())
        errors = sum(f.severity == "error" for f in findings)
        warnings = len(findings) - errors
        if findings:
            print(f"{len(findings)} finding(s): {errors} error(s), "
                  f"{warnings} warning(s)", file=sys.stderr)
        else:
            print(f"clean: {len(project.files)} files, 0 findings",
                  file=sys.stderr)
    return 1 if findings else 0


# ----------------------------------------------------------------------
# repro serve
# ----------------------------------------------------------------------
def make_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the compile server: an HTTP front end with a "
                    "bounded priority job queue, in-flight request "
                    "coalescing, per-tenant cache salting, /metrics, "
                    "and graceful drain on shutdown",
        epilog="routes: POST /compile (one request), POST /batch (a "
               "request list; responses match 'repro batch --json'), "
               "GET /metrics, GET /healthz, POST /shutdown; requests "
               "may carry 'tenant', 'priority' and 'timeout_s' fields",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address")
    parser.add_argument("--port", type=int, default=8000,
                        help="TCP port (0 picks an ephemeral port; the "
                             "bound port is announced on stderr)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker threads compiling queued requests")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="pending-job bound before 429 backpressure")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="persist stage artifacts under this "
                             "directory, salted per tenant and source "
                             "digest")
    parser.add_argument("--memory-limit", type=int, default=1024,
                        help="in-memory artifact entries per tenant")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="default per-request timeout (requests may "
                             "override with 'timeout_s')")
    parser.add_argument("--workers", choices=("thread", "process"),
                        default="thread",
                        help="where compiles execute: 'thread' (default) "
                             "or 'process' (a supervised process pool: "
                             "crash isolation, bounded retries, poison-"
                             "job quarantine)")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="re-runs of a worker-crashing job before it "
                             "is quarantined (process mode)")
    parser.add_argument("--journal", nargs="?", const="auto", default=None,
                        metavar="FILE",
                        help="write-ahead log of accepted jobs, replayed "
                             "on restart; without FILE it lives at "
                             "CACHE/journal.jsonl (requires --cache)")
    parser.add_argument("--idle-timeout", type=float, default=60.0,
                        metavar="SECONDS",
                        help="how long an idle keep-alive connection is "
                             "held open")
    return parser


def serve_main(argv: list[str]) -> int:
    from repro.service.server import ServiceConfig, serve

    args = make_serve_parser().parse_args(argv)
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 1
    if args.queue_depth < 1:
        print("error: --queue-depth must be >= 1", file=sys.stderr)
        return 1
    if args.port < 0 or args.port > 65535:
        print("error: --port must be in 0..65535", file=sys.stderr)
        return 1
    if args.timeout is not None and args.timeout <= 0:
        print("error: --timeout must be positive", file=sys.stderr)
        return 1
    if args.max_retries < 0:
        print("error: --max-retries must be >= 0", file=sys.stderr)
        return 1
    if args.idle_timeout <= 0:
        print("error: --idle-timeout must be positive", file=sys.stderr)
        return 1
    journal_path = args.journal
    if journal_path == "auto":
        if not args.cache:
            print("error: --journal without a FILE requires --cache",
                  file=sys.stderr)
            return 1
        journal_path = str(Path(args.cache) / "journal.jsonl")
    config = ServiceConfig(
        jobs=args.jobs,
        queue_depth=args.queue_depth,
        cache_dir=args.cache or None,
        memory_limit=args.memory_limit,
        default_timeout_s=args.timeout,
        worker_mode=args.workers,
        max_retries=args.max_retries,
        journal_path=journal_path,
        idle_timeout_s=args.idle_timeout,
    )
    return serve(config, host=args.host, port=args.port)


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "compile":
        return compile_main(argv[1:])
    if argv and argv[0] == "batch":
        return batch_main(argv[1:])
    if argv and argv[0] == "bind":
        return bind_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    args = make_parser().parse_args(argv)
    step = build_step(args.benchmark, args.qubits, args.seed)
    device = _resolve_device(args.device, args.qubits)
    if device is None:
        return 1

    compiler = get_compiler("2qan", device=device, gateset=args.gateset,
                            seed=args.seed,
                            mapping_trials=args.mapping_trials,
                            mapping_jobs=args.mapping_jobs)
    result = compiler.compile(step)
    print(f"{args.benchmark} n={args.qubits} on {device.name} "
          f"({args.gateset} basis)")
    print(f"  2QAN: swaps={result.n_swaps} dressed={result.n_dressed} "
          f"2q-gates={result.metrics.n_two_qubit_gates} "
          f"2q-depth={result.metrics.two_qubit_depth} "
          f"depth={result.metrics.total_depth}")
    if args.compare:
        for label, name in (("NoMap", "nomap"), ("tket-like", "tket"),
                            ("qiskit-like", "qiskit")):
            baseline = get_compiler(name, device=device,
                                    gateset=args.gateset, seed=args.seed)
            r = baseline.compile(step)
            print(f"  {label}: swaps={r.n_swaps} "
                  f"2q-gates={r.metrics.n_two_qubit_gates} "
                  f"2q-depth={r.metrics.two_qubit_depth}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
