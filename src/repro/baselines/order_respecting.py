"""Order-respecting gate-level routers: the generic-compiler stand-ins.

Both honour the *input gate order*: a gate may execute only when every
earlier gate sharing one of its qubits has executed (the standard gate
dependency DAG).  Disjoint gates may run in any order -- that is the full
extent of reordering a generic compiler can prove safe, and precisely
what 2QAN's permutation-awareness goes beyond.

* :class:`TketLikeCompiler` / :func:`compile_tket_like` -- line
  placement + frontier routing with a lookahead window and decay, in the
  spirit of t|ket>'s routing pass.
* :class:`QiskitLikeCompiler` / :func:`compile_qiskit_like` --
  randomized placement (best of 5 by QAP cost) + frontier routing
  *without* lookahead and with stochastic tie breaking, in the spirit of
  Qiskit 0.26's stochastic swapper.

Neither dresses SWAPs.  Inputs are pair-unified first, matching the
paper's protocol ("we also pre-process the input circuits for t|ket> and
Qiskit by applying the circuit unitary unifying").

Pipelines: ``UnifyPass -> {LinePlacementPass | RandomPlacementPass} ->
FrontierRoutePass -> DecomposePass``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.baselines.base import app_1q_gate, app_2q_gate, swap_gate
from repro.core.decompose import DecomposeCache
from repro.core.pipeline import (
    BindPass,
    CompilationContext,
    CompilationResult,
    DecomposePass,
    PassPipeline,
    PipelineCompiler,
    UnifyPass,
)
from repro.core.routing import QubitMap
from repro.devices.topology import Device
from repro.hamiltonians.trotter import TrotterStep, TwoQubitOperator
from repro.mapping.placement import line_placement, random_mapping
from repro.mapping.qap import qap_from_problem
from repro.quantum.circuit import Circuit
from repro.synthesis.gateset import GateSet


@dataclass
class _DagState:
    """Frontier iteration over the gate dependency DAG."""

    operators: list[TwoQubitOperator]
    predecessors: list[set[int]]
    successors: list[set[int]]
    executed: set[int]

    @classmethod
    def from_operators(cls, operators: list[TwoQubitOperator]) -> "_DagState":
        last_on_qubit: dict[int, int] = {}
        predecessors: list[set[int]] = [set() for _ in operators]
        successors: list[set[int]] = [set() for _ in operators]
        for index, op in enumerate(operators):
            for qubit in op.pair:
                prev = last_on_qubit.get(qubit)
                if prev is not None:
                    predecessors[index].add(prev)
                    successors[prev].add(index)
                last_on_qubit[qubit] = index
        return cls(operators, predecessors, successors, set())

    def frontier(self) -> list[int]:
        return [
            i for i in range(len(self.operators))
            if i not in self.executed and not (self.predecessors[i] - self.executed)
        ]

    def lookahead(self, frontier: list[int], window: int) -> list[int]:
        """The next ``window`` gates beyond the frontier, program order."""
        found: list[int] = []
        frontier_set = set(frontier)
        for i in range(len(self.operators)):
            if i in self.executed or i in frontier_set:
                continue
            found.append(i)
            if len(found) >= window:
                break
        return found


def _route_order_respecting(step: TrotterStep, device: Device,
                            initial: np.ndarray, *, lookahead: int,
                            stochastic: bool, seed: int,
                            ) -> tuple[Circuit, int, QubitMap, QubitMap]:
    """Shared frontier-routing loop; returns the application circuit."""
    rng = np.random.default_rng(seed)
    qmap = QubitMap.from_assignment(initial)
    initial_map = qmap.copy()
    dag = _DagState.from_operators(step.two_qubit_ops)
    circuit = Circuit(device.n_qubits)
    dist = device.distance
    n_swaps = 0
    last_swap: tuple[int, int] | None = None
    guard = 0
    limit = 200 * (len(step.two_qubit_ops) + 1) * (device.diameter + 1)

    def gate_distance(index: int, mapping: QubitMap) -> float:
        u, v = dag.operators[index].pair
        return float(dist[mapping.physical(u), mapping.physical(v)])

    while True:
        guard += 1
        if guard > limit:
            raise RuntimeError("order-respecting router failed to converge")
        frontier = dag.frontier()
        if not frontier:
            break
        ready = [
            i for i in frontier
            if device.are_neighbors(
                qmap.physical(dag.operators[i].pair[0]),
                qmap.physical(dag.operators[i].pair[1]),
            )
        ]
        if ready:
            for index in ready:
                op = dag.operators[index]
                u, v = op.pair
                pu, pv = qmap.physical(u), qmap.physical(v)
                circuit.append(app_2q_gate(op, pu, pv))
                dag.executed.add(index)
            last_swap = None
            continue
        # No executable gate: insert a SWAP chosen by the heuristic.
        candidates: set[tuple[int, int]] = set()
        for index in frontier:
            for logical in dag.operators[index].pair:
                physical = qmap.physical(logical)
                for neighbour in device.neighbors(physical):
                    candidates.add((min(physical, neighbour),
                                    max(physical, neighbour)))
        if last_swap in candidates and len(candidates) > 1:
            candidates.discard(last_swap)
        extended = dag.lookahead(frontier, lookahead) if lookahead else []
        scored: list[tuple[float, tuple[int, int]]] = []
        for edge in sorted(candidates):
            trial = qmap.after_swap(edge)
            score = sum(gate_distance(i, trial) for i in frontier)
            if extended:
                score += 0.5 * sum(
                    gate_distance(i, trial) for i in extended
                ) / len(extended) * len(frontier)
            scored.append((score, edge))
        best_score = min(s for s, _ in scored)
        ties = [e for s, e in scored if s <= best_score + 1e-9]
        if stochastic and len(ties) > 1:
            edge = ties[int(rng.integers(len(ties)))]
        else:
            edge = ties[0]
        circuit.append(swap_gate(*edge))
        qmap = qmap.after_swap(edge)
        n_swaps += 1
        last_swap = edge
    return circuit, n_swaps, initial_map, qmap


def _append_one_qubit_ops(circuit: Circuit, step: TrotterStep,
                          final_map: QubitMap) -> Circuit:
    for op in step.one_qubit_ops:
        circuit.append(app_1q_gate(op, final_map.physical(op.qubit)))
    return circuit


# ----------------------------------------------------------------------
# Pipeline passes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinePlacementPass:
    """Deterministic line placement (the t|ket>-style initial map)."""

    name: str = "mapping"

    reads: ClassVar[tuple[str, ...]] = ("step", "device", "initial")
    writes: ClassVar[tuple[str, ...]] = ("assignment",)

    def run(self, ctx: CompilationContext) -> CompilationContext:
        device = ctx.require("device")
        ctx.assignment = (np.asarray(ctx.initial) if ctx.initial is not None
                          else line_placement(ctx.step.n_qubits, device))
        return ctx


@dataclass(frozen=True)
class RandomPlacementPass:
    """Best of ``trials`` random placements scored by QAP cost."""

    trials: int = 5
    name: str = "mapping"

    reads: ClassVar[tuple[str, ...]] = ("working", "step", "device",
                                        "seed", "initial")
    writes: ClassVar[tuple[str, ...]] = ("assignment", "qap_cost")

    def run(self, ctx: CompilationContext) -> CompilationContext:
        working = ctx.require("working")
        device = ctx.require("device")
        instance = qap_from_problem(working, device)
        if ctx.initial is not None:
            ctx.assignment = np.asarray(ctx.initial)
        else:
            placements = [
                random_mapping(ctx.step.n_qubits, device,
                               seed=ctx.seed + 31 * t)
                for t in range(self.trials)
            ]
            ctx.assignment = min(placements, key=instance.cost)
        ctx.qap_cost = float(instance.cost(ctx.assignment))
        return ctx


@dataclass(frozen=True)
class FrontierRoutePass:
    """Order-respecting frontier routing (shared t|ket>/Qiskit loop)."""

    lookahead: int = 0
    stochastic: bool = False
    name: str = "routing"

    reads: ClassVar[tuple[str, ...]] = ("working", "device", "assignment",
                                        "seed")
    writes: ClassVar[tuple[str, ...]] = ("app_circuit", "n_swaps",
                                         "initial_map", "final_map")

    def run(self, ctx: CompilationContext) -> CompilationContext:
        working = ctx.require("working")
        device = ctx.require("device")
        assignment = ctx.require("assignment")
        app, n_swaps, init_map, final_map = _route_order_respecting(
            working, device, assignment, lookahead=self.lookahead,
            stochastic=self.stochastic, seed=ctx.seed,
        )
        ctx.app_circuit = _append_one_qubit_ops(app, working, final_map)
        ctx.n_swaps = n_swaps
        ctx.initial_map = init_map
        ctx.final_map = final_map
        return ctx


# ----------------------------------------------------------------------
# Compilers
# ----------------------------------------------------------------------
@dataclass
class _OrderRespectingCompiler(PipelineCompiler):
    """Shared configuration for the two order-respecting stand-ins."""

    device: Device
    gateset: GateSet
    seed: int = 0
    unify: bool = True
    solve: bool = False
    cache: DecomposeCache | None = None


@dataclass
class TketLikeCompiler(_OrderRespectingCompiler):
    """Line placement + lookahead frontier routing (t|ket> stand-in)."""

    lookahead: int = 20

    def build_pipeline(self) -> PassPipeline:
        return PassPipeline([
            UnifyPass(enabled=self.unify),
            LinePlacementPass(),
            FrontierRoutePass(lookahead=self.lookahead, stochastic=False),
            BindPass(),
            DecomposePass(solve=self.solve),
        ])


@dataclass
class QiskitLikeCompiler(_OrderRespectingCompiler):
    """Random best-of-k placement + stochastic no-lookahead routing
    (Qiskit-0.26 stand-in)."""

    trials: int = 5

    def build_pipeline(self) -> PassPipeline:
        return PassPipeline([
            UnifyPass(enabled=self.unify),
            RandomPlacementPass(trials=self.trials),
            FrontierRoutePass(lookahead=0, stochastic=True),
            BindPass(),
            DecomposePass(solve=self.solve),
        ])


def compile_tket_like(step: TrotterStep, device: Device,
                      gateset: str | GateSet, seed: int = 0, *,
                      unify: bool = True, solve: bool = False,
                      lookahead: int = 20, cache=None) -> CompilationResult:
    """Line placement + lookahead frontier routing (t|ket> stand-in)."""
    return TketLikeCompiler(device=device, gateset=gateset, seed=seed,
                            unify=unify, solve=solve, lookahead=lookahead,
                            cache=cache).compile(step)


def compile_qiskit_like(step: TrotterStep, device: Device,
                        gateset: str | GateSet, seed: int = 0, *,
                        unify: bool = True, solve: bool = False,
                        trials: int = 5, cache=None) -> CompilationResult:
    """Random best-of-k placement + stochastic no-lookahead routing
    (Qiskit-0.26 stand-in)."""
    return QiskitLikeCompiler(device=device, gateset=gateset, seed=seed,
                              unify=unify, solve=solve, trials=trials,
                              cache=cache).compile(step)
