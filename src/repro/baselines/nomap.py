"""The connectivity-free "NoMap" baseline (paper Section IV, Metrics).

Pair-unified operators scheduled by graph colouring on an all-to-all
device, then decomposed.  Every overhead number in the evaluation is an
increase over this circuit.
"""

from __future__ import annotations

from repro.baselines.base import BaselineResult, lower_app_circuit
from repro.core.scheduling import schedule_no_device
from repro.core.unify import unify_circuit_operators
from repro.hamiltonians.trotter import TrotterStep
from repro.synthesis.gateset import GateSet


def compile_nomap(step: TrotterStep, gateset: str | GateSet, *,
                  unify: bool = True, solve: bool = False,
                  seed: int = 0, cache=None) -> BaselineResult:
    """Compile assuming all-to-all connectivity."""
    working = unify_circuit_operators(step) if unify else step
    app_circuit = schedule_no_device(working, seed=seed)
    identity = {q: q for q in range(step.n_qubits)}
    return lower_app_circuit(app_circuit, gateset, n_swaps=0,
                             initial_map=identity, final_map=identity,
                             solve=solve, seed=seed, cache=cache)
