"""The connectivity-free "NoMap" baseline (paper Section IV, Metrics).

Pair-unified operators scheduled by graph colouring on an all-to-all
device, then decomposed.  Every overhead number in the evaluation is an
increase over this circuit.

Pipeline: ``UnifyPass -> NoDeviceSchedulePass -> DecomposePass``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.baselines.base import identity_map
from repro.core.decompose import DecomposeCache
from repro.core.pipeline import (
    BindPass,
    CompilationContext,
    CompilationResult,
    DecomposePass,
    PassPipeline,
    PipelineCompiler,
    UnifyPass,
)
from repro.core.scheduling import schedule_no_device
from repro.hamiltonians.trotter import TrotterStep
from repro.synthesis.gateset import GateSet


@dataclass(frozen=True)
class NoDeviceSchedulePass:
    """Colour-schedule the problem assuming all-to-all connectivity."""

    name: str = "scheduling"

    reads: ClassVar[tuple[str, ...]] = ("working", "step", "seed")
    writes: ClassVar[tuple[str, ...]] = ("app_circuit", "initial_map",
                                         "final_map")

    def run(self, ctx: CompilationContext) -> CompilationContext:
        working = ctx.require("working")
        ctx.app_circuit = schedule_no_device(working, seed=ctx.seed)
        identity = identity_map(ctx.step.n_qubits)
        ctx.initial_map = identity
        ctx.final_map = identity
        return ctx


@dataclass
class NoMapCompiler(PipelineCompiler):
    """The NoMap baseline as a pipeline compiler (device-free)."""

    gateset: GateSet
    seed: int = 0
    unify: bool = True
    solve: bool = False
    cache: DecomposeCache | None = None

    def build_pipeline(self) -> PassPipeline:
        return PassPipeline([
            UnifyPass(enabled=self.unify),
            NoDeviceSchedulePass(),
            BindPass(),
            DecomposePass(solve=self.solve),
        ])


def compile_nomap(step: TrotterStep, gateset: str | GateSet, *,
                  unify: bool = True, solve: bool = False,
                  seed: int = 0, cache=None) -> CompilationResult:
    """Compile assuming all-to-all connectivity."""
    return NoMapCompiler(gateset=gateset, seed=seed, unify=unify,
                         solve=solve, cache=cache).compile(step)
