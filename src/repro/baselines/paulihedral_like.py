"""An idealised Paulihedral-style block scheduler (stand-in for ref [36]).

Paulihedral treats the input as Pauli-string blocks: it orders the
exponentials so related blocks sit together and applies CNOT-tree
cancellation between consecutive exponentials, but performs **no pair
unifying and no SWAP dressing** (it optimises scheduling only -- exactly
the gap the paper's Table III isolates).

Cost model (all-to-all connectivity, the paper's Heisenberg rows):

* a maximal run of k >= 2 consecutive exponentials on the same pair
  costs 3 CNOTs (the commuting XX/YY/ZZ family diagonalises together --
  this is the best case the real tool reaches on 1-D chains, where its
  published number is exactly 3 CNOTs x 29 pairs = 87);
* an isolated two-qubit exponential costs 2 CNOTs.

This is an *idealised lower bound* on the real Paulihedral: on 2-D/3-D
lattices the real tool trades cancellation for layer parallelism and
lands higher (216 / 305 published vs 147 / 177 here).  The benchmark
therefore compares 2QAN against both this bound and the published
numbers; 2QAN matches the bound (unifying achieves 3 CNOTs per pair with
routing included) and beats the published values.

Pipeline: a single ``PaulihedralSchedulePass`` -- the cost model plays
the role of decomposition, so no lowering pass follows.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import groupby
from typing import ClassVar

from repro.baselines.base import identity_map
from repro.core.metrics import CircuitMetrics
from repro.core.pipeline import (
    BindPass,
    CompilationContext,
    CompilationResult,
    PassPipeline,
    PipelineCompiler,
)
from repro.hamiltonians.trotter import TrotterStep
from repro.quantum.circuit import Circuit


@dataclass(frozen=True)
class PaulihedralSchedulePass:
    """Block-ordered scheduling under the idealised CNOT cost model."""

    name: str = "scheduling"

    reads: ClassVar[tuple[str, ...]] = ("step",)
    writes: ClassVar[tuple[str, ...]] = ("app_circuit", "circuit",
                                         "metrics", "initial_map",
                                         "final_map")

    def run(self, ctx: CompilationContext) -> CompilationContext:
        step = ctx.step
        ordered = sorted(step.two_qubit_ops,
                         key=lambda op: (op.pair, op.label))
        circuit = Circuit(step.n_qubits)
        cnot_depth = [0] * step.n_qubits
        n_cnots = 0
        for pair, run in groupby(ordered, key=lambda op: op.pair):
            run = list(run)
            cost = 3 if len(run) >= 2 else 2
            n_cnots += cost
            u, v = pair
            start = max(cnot_depth[u], cnot_depth[v])
            cnot_depth[u] = cnot_depth[v] = start + cost
            for op in run:
                circuit.append(op.to_gate())
        ctx.app_circuit = circuit
        ctx.circuit = circuit
        ctx.metrics = CircuitMetrics(
            n_two_qubit_gates=n_cnots,
            two_qubit_depth=max(cnot_depth, default=0),
            total_depth=max(cnot_depth, default=0) + 1,
            n_swaps=0,
            n_dressed=0,
        )
        identity = identity_map(step.n_qubits)
        ctx.initial_map = identity
        ctx.final_map = identity
        return ctx


@dataclass
class PaulihedralLikeCompiler(PipelineCompiler):
    """The idealised Paulihedral baseline (device- and gate-set-free)."""

    seed: int = 0
    gateset: object = None
    cache: object = None

    def build_pipeline(self) -> PassPipeline:
        # the cost-model metrics are angle-free, so the bind pass runs
        # last, materialising the published circuits only
        return PassPipeline([PaulihedralSchedulePass(), BindPass()])


def compile_paulihedral_like(step: TrotterStep, seed: int = 0,
                             ) -> CompilationResult:
    """All-to-all Paulihedral-style compilation of a Trotter step."""
    return PaulihedralLikeCompiler(seed=seed).compile(step)
