"""Shared helpers for the baseline compilers.

The baselines compile through the same :mod:`repro.core.pipeline`
substrate as 2QAN and return the same
:class:`~repro.core.pipeline.CompilationResult`.  ``BaselineResult`` --
the former baseline-only result type -- survives as a deprecated alias
of ``CompilationResult`` so external imports keep working.
"""

from __future__ import annotations

import warnings

from repro.core.decompose import DecomposeCache, decompose_circuit
from repro.core.metrics import CircuitMetrics
from repro.core.pipeline import CompilationResult
from repro.core.routing import QubitMap
from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate, standard_gate_unitary
from repro.quantum.params import SymbolicUnitary, factor_template_key
from repro.synthesis.gateset import GateSet, get_gateset

_SWAP = standard_gate_unitary("SWAP")

__all__ = ["BaselineResult", "lower_app_circuit", "swap_gate",
           "identity_map", "app_2q_gate", "app_1q_gate"]


def __getattr__(name: str):
    if name == "BaselineResult":
        warnings.warn(
            "BaselineResult is deprecated; baselines now return "
            "repro.core.pipeline.CompilationResult",
            DeprecationWarning, stacklevel=2,
        )
        return CompilationResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def identity_map(n_qubits: int) -> QubitMap:
    """The trivial logical->physical assignment."""
    return QubitMap({q: q for q in range(n_qubits)})


def _as_qubit_map(mapping: QubitMap | dict[int, int]) -> QubitMap:
    if isinstance(mapping, QubitMap):
        return mapping
    return QubitMap(dict(mapping))


def lower_app_circuit(app_circuit: Circuit, gateset: str | GateSet,
                      n_swaps: int, initial_map, final_map, *,
                      solve: bool = False, seed: int = 0,
                      cache: DecomposeCache | None = None,
                      timings: dict[str, float] | None = None,
                      ) -> CompilationResult:
    """Decompose an application-level routed circuit and collect metrics.

    Legacy one-shot helper kept for direct callers; the pipeline
    compilers reach the same lowering through
    :class:`repro.core.pipeline.DecomposePass`.
    """
    if isinstance(gateset, str):
        gateset = get_gateset(gateset)
    hardware = decompose_circuit(app_circuit, gateset, solve=solve,
                                 seed=seed, cache=cache)
    metrics = CircuitMetrics.from_circuit(hardware, n_swaps=n_swaps)
    return CompilationResult(
        circuit=hardware,
        metrics=metrics,
        timings=dict(timings or {}),
        app_circuit=app_circuit,
        n_swaps=n_swaps,
        initial_map=_as_qubit_map(initial_map),
        final_map=_as_qubit_map(final_map),
    )


def swap_gate(p: int, q: int) -> Gate:
    return Gate("SWAP", (min(p, q), max(p, q)))


def app_2q_gate(op, pu: int, pv: int) -> Gate:
    """A routed two-qubit operator as an ``APP2Q`` gate on ``(pu, pv)``.

    Shared by the gate-level routers.  A symbolic operator (no matrix
    yet) emits a gate whose unitary is a
    :class:`~repro.quantum.params.SymbolicUnitary` recording the same
    orientation flip the concrete path applies, so a later bind yields
    the bit-identical matrix; a concrete operator built from exponential
    factors carries its decomposition-template key.
    """
    conjugated = pu > pv
    qubits = (min(pu, pv), max(pu, pv))
    meta = {"label": op.label}
    if op.unitary is None:
        return Gate("APP2Q", qubits, meta=meta,
                    symbolic=SymbolicUnitary(op.factors,
                                             conjugate_swap=conjugated))
    matrix = _SWAP @ op.unitary @ _SWAP if conjugated else op.unitary
    if op.factors:
        meta["template"] = factor_template_key(op.factors, conjugated, False)
    return Gate("APP2Q", qubits, matrix=matrix, meta=meta)


def app_1q_gate(op, physical: int) -> Gate:
    """A single-qubit exponential as an ``APP1Q`` gate on ``physical``."""
    if op.unitary is None:
        return Gate("APP1Q", (physical,),
                    symbolic=SymbolicUnitary(op.factors),
                    meta={"label": op.label})
    return Gate("APP1Q", (physical,), matrix=op.unitary,
                meta={"label": op.label})
