"""Shared result type and helpers for the baseline compilers."""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.core.decompose import DecomposeCache, decompose_circuit
from repro.core.metrics import CircuitMetrics
from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate, standard_gate_unitary
from repro.synthesis.gateset import GateSet, get_gateset

_SWAP = standard_gate_unitary("SWAP")


@dataclass
class BaselineResult:
    """Output of a baseline compilation, mirroring CompilationResult."""

    circuit: Circuit
    metrics: CircuitMetrics
    n_swaps: int
    initial_map: dict[int, int]
    final_map: dict[int, int]
    app_circuit: Circuit = field(default=None, repr=False)

    @property
    def n_dressed(self) -> int:
        return 0


def lower_app_circuit(app_circuit: Circuit, gateset: str | GateSet,
                      n_swaps: int, initial_map: dict[int, int],
                      final_map: dict[int, int], *, solve: bool = False,
                      seed: int = 0,
                      cache: DecomposeCache | None = None) -> BaselineResult:
    """Decompose an application-level routed circuit and collect metrics."""
    if isinstance(gateset, str):
        gateset = get_gateset(gateset)
    hardware = decompose_circuit(app_circuit, gateset, solve=solve,
                                 seed=seed, cache=cache)
    metrics = CircuitMetrics.from_circuit(hardware, n_swaps=n_swaps)
    return BaselineResult(
        circuit=hardware,
        metrics=metrics,
        n_swaps=n_swaps,
        initial_map=dict(initial_map),
        final_map=dict(final_map),
        app_circuit=app_circuit,
    )


def swap_gate(p: int, q: int) -> Gate:
    return Gate("SWAP", (min(p, q), max(p, q)))
