"""IC-QAOA-style compiler (stand-in for Alam et al., MICRO/DAC 2020).

The real tool exploits the *commutativity* of the QAOA cost layer: all
``exp(i gamma ZZ)`` operators commute, so any of them may execute whenever
its qubits are adjacent -- the "instruction-gain" insight.  The router
therefore looks like 2QAN's (order-free absorption of NN gates) but:

* SWAP selection greedily maximises the number of *newly executable*
  gates (instruction gain), breaking ties by remaining-distance sum --
  rather than 2QAN's prioritised global criteria;
* there is no SWAP dressing and no ALAP hybrid scheduling;
* it refuses Hamiltonians whose two-qubit terms do not all commute
  (the real tool is QAOA-specific; this is what restricts it to
  CNOT/CZ-friendly commuting circuits in the paper's comparison).

Pipeline: ``UnifyPass -> CommutationGuardPass -> DegreePlacementPass ->
InstructionGainRoutePass -> DecomposePass``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.baselines.base import app_1q_gate, app_2q_gate, swap_gate
from repro.core.decompose import DecomposeCache
from repro.core.pipeline import (
    BindPass,
    CompilationContext,
    CompilationResult,
    DecomposePass,
    PassPipeline,
    PipelineCompiler,
    UnifyPass,
)
from repro.core.routing import QubitMap
from repro.devices.topology import Device
from repro.hamiltonians.trotter import TrotterStep
from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate
from repro.quantum.params import probe_binding
from repro.synthesis.gateset import GateSet


def _all_commuting(step: TrotterStep) -> bool:
    """Check pairwise commutation of the generating Pauli pairs.

    Unified ZZ...ZZ products commute iff their generators do; operator
    labels record the generators, but checking the unitaries directly is
    simpler and exact: commuting 4x4 blocks on overlapping qubits is not
    sufficient in general, so we check matrix commutators on the joint
    support for overlapping pairs.

    A symbolic step is probed under a generic angle binding: whether two
    exponential families commute does not depend on generic (non-special)
    angle values, so the structural guard needs no real binding.
    """
    if step.is_symbolic:
        step = step.bind(probe_binding(step.parameters()))
    ops = step.two_qubit_ops
    for i, a in enumerate(ops):
        for b in ops[i + 1 :]:
            shared = set(a.pair) & set(b.pair)
            if not shared or a.pair == b.pair:
                continue
            joint = sorted(set(a.pair) | set(b.pair))
            ua = _embed(a.unitary, a.pair, joint)
            ub = _embed(b.unitary, b.pair, joint)
            if np.abs(ua @ ub - ub @ ua).max() > 1e-9:
                return False
    return True


def _embed(matrix: np.ndarray, pair: tuple[int, int],
           joint: list[int]) -> np.ndarray:
    circuit = Circuit(len(joint))
    local = tuple(joint.index(q) for q in pair)
    circuit.append(Gate("APP2Q", local, matrix=matrix))
    return circuit.unitary()


def _degree_bfs_placement(step: TrotterStep, device: Device,
                          seed: int = 0) -> np.ndarray:
    """Greedy placement: highest-degree problem qubit onto the
    highest-degree free device qubit adjacent to already-placed partners."""
    n = step.n_qubits
    degree = np.zeros(n, dtype=int)
    neighbours: list[set[int]] = [set() for _ in range(n)]
    for op in step.two_qubit_ops:
        u, v = op.pair
        degree[u] += 1
        degree[v] += 1
        neighbours[u].add(v)
        neighbours[v].add(u)
    order = sorted(range(n), key=lambda q: -degree[q])
    placement: dict[int, int] = {}
    used: set[int] = set()
    device_degree = [len(device.neighbors(q)) for q in range(device.n_qubits)]
    for logical in order:
        placed_partners = [p for p in neighbours[logical] if p in placement]
        candidates: set[int] = set()
        for partner in placed_partners:
            candidates |= device.neighbors(placement[partner]) - used
        if not candidates:
            candidates = set(range(device.n_qubits)) - used
        # prefer highly connected free qubits close to placed partners
        def score(physical: int) -> tuple[float, int]:
            if placed_partners:
                total = sum(
                    device.distance[physical, placement[p]]
                    for p in placed_partners
                )
            else:
                total = 0.0
            return (total, -device_degree[physical])
        chosen = min(sorted(candidates), key=score)
        placement[logical] = chosen
        used.add(chosen)
    return np.array([placement[q] for q in range(n)])


# ----------------------------------------------------------------------
# Pipeline passes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CommutationGuardPass:
    """Refuse problems whose two-qubit layers do not all commute."""

    name: str = "validate"

    reads: ClassVar[tuple[str, ...]] = ("working",)
    writes: ClassVar[tuple[str, ...]] = ()

    def run(self, ctx: CompilationContext) -> CompilationContext:
        working = ctx.require("working")
        if not _all_commuting(working):
            raise ValueError(
                "IC-QAOA handles only mutually commuting two-qubit layers "
                "(QAOA cost layers / Ising models)"
            )
        return ctx


@dataclass(frozen=True)
class DegreePlacementPass:
    """Greedy degree-BFS placement (the IC-QAOA initial map)."""

    name: str = "mapping"

    reads: ClassVar[tuple[str, ...]] = ("working", "device", "seed",
                                        "initial")
    writes: ClassVar[tuple[str, ...]] = ("assignment",)

    def run(self, ctx: CompilationContext) -> CompilationContext:
        working = ctx.require("working")
        device = ctx.require("device")
        ctx.assignment = (np.asarray(ctx.initial) if ctx.initial is not None
                          else _degree_bfs_placement(working, device,
                                                     ctx.seed))
        return ctx


@dataclass(frozen=True)
class InstructionGainRoutePass:
    """SWAP selection greedily maximising newly-executable gates."""

    name: str = "routing"

    # seed was declared here through PR 9 but run() never consumes it:
    # the greedy gain rule is deterministic given the placement, so the
    # over-scoped key fragmented the cache across seeds for nothing
    # (caught by repro lint RPR001).
    reads: ClassVar[tuple[str, ...]] = ("working", "device", "assignment")
    writes: ClassVar[tuple[str, ...]] = ("app_circuit", "n_swaps",
                                         "initial_map", "final_map")

    def run(self, ctx: CompilationContext) -> CompilationContext:
        working = ctx.require("working")
        device = ctx.require("device")
        assignment = ctx.require("assignment")
        qmap = QubitMap.from_assignment(assignment)
        initial_map = qmap.copy()
        circuit = Circuit(device.n_qubits)
        remaining = list(working.two_qubit_ops)
        dist = device.distance
        n_swaps = 0
        guard = 0
        limit = 200 * (len(remaining) + 1) * (device.diameter + 1)

        def execute_ready() -> None:
            nonlocal remaining
            still = []
            for op in remaining:
                u, v = op.pair
                pu, pv = qmap.physical(u), qmap.physical(v)
                if device.are_neighbors(pu, pv):
                    circuit.append(app_2q_gate(op, pu, pv))
                else:
                    still.append(op)
            remaining = still

        execute_ready()
        while remaining:
            guard += 1
            if guard > limit:
                raise RuntimeError("IC-QAOA router failed to converge")
            # candidate swaps: edges incident to any remaining gate's qubits
            candidates: set[tuple[int, int]] = set()
            for op in remaining:
                for logical in op.pair:
                    physical = qmap.physical(logical)
                    for neighbour in device.neighbors(physical):
                        candidates.add((min(physical, neighbour),
                                        max(physical, neighbour)))
            # score every candidate against every remaining gate at once:
            # a trial swap (a, b) moves the qubit sitting on a to b and
            # vice versa, so the post-swap positions are a pair of
            # np.where relabellings and the (gates x candidates) distance
            # block one fancy index.  Distances are integer hop counts,
            # so the vectorized sums are exact and the selected edge is
            # identical to the old per-candidate scalar probes.
            edges = sorted(candidates)
            phys = np.array([[qmap.physical(op.pair[0]),
                              qmap.physical(op.pair[1])]
                             for op in remaining])
            edge_a = np.array([a for a, _ in edges])[None, :]
            edge_b = np.array([b for _, b in edges])[None, :]
            pu, pv = phys[:, :1], phys[:, 1:]
            pu_trial = np.where(pu == edge_a, edge_b,
                                np.where(pu == edge_b, edge_a, pu))
            pv_trial = np.where(pv == edge_a, edge_b,
                                np.where(pv == edge_b, edge_a, pv))
            trial_dist = dist[pu_trial, pv_trial]
            gain = (trial_dist == 1.0).sum(axis=0)
            total = trial_dist.sum(axis=0)
            # first strict minimum of (-gain, total) in sorted edge order
            best_idx = np.lexsort((np.arange(len(edges)), total, -gain))[0]
            best_edge = edges[int(best_idx)]
            circuit.append(swap_gate(*best_edge))
            qmap = qmap.after_swap(best_edge)
            n_swaps += 1
            execute_ready()

        for op in working.one_qubit_ops:
            circuit.append(app_1q_gate(op, qmap.physical(op.qubit)))
        ctx.app_circuit = circuit
        ctx.n_swaps = n_swaps
        ctx.initial_map = initial_map
        ctx.final_map = qmap
        return ctx


# ----------------------------------------------------------------------
# Compiler
# ----------------------------------------------------------------------
@dataclass
class ICQAOACompiler(PipelineCompiler):
    """Instruction-gain routing for commuting (QAOA/Ising) layers."""

    device: Device
    gateset: GateSet
    seed: int = 0
    unify: bool = True
    solve: bool = False
    cache: DecomposeCache | None = None

    def build_pipeline(self) -> PassPipeline:
        return PassPipeline([
            UnifyPass(enabled=self.unify),
            CommutationGuardPass(),
            DegreePlacementPass(),
            InstructionGainRoutePass(),
            BindPass(),
            DecomposePass(solve=self.solve),
        ])


def compile_ic_qaoa(step: TrotterStep, device: Device,
                    gateset: str | GateSet, seed: int = 0, *,
                    unify: bool = True, solve: bool = False,
                    cache=None) -> CompilationResult:
    """Instruction-gain routing for commuting (QAOA/Ising) layers."""
    return ICQAOACompiler(device=device, gateset=gateset, seed=seed,
                          unify=unify, solve=solve, cache=cache).compile(step)
