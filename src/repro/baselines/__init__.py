"""Baseline compilers the paper compares against.

None of the real tools (Qiskit 0.26, t|ket> 0.11, the IC-QAOA compiler,
Paulihedral) are available offline, so this package provides faithful
stand-ins (substitutions documented in DESIGN.md):

* :mod:`repro.baselines.order_respecting` -- generic gate-level compilers
  that honour the input gate order (reordering only trivially-disjoint
  gates): a lookahead frontier router ("tket-like") and a no-lookahead
  stochastic router ("qiskit-like").
* :mod:`repro.baselines.qaoa_ic` -- an IC-QAOA-style compiler that
  exploits the full commutativity of ZZ cost layers (instruction-gain
  SWAP selection) but performs no SWAP dressing.
* :mod:`repro.baselines.nomap` -- the connectivity-free "NoMap" baseline
  against which all overheads are measured.
"""

from repro.baselines.base import BaselineResult
from repro.baselines.nomap import compile_nomap
from repro.baselines.order_respecting import compile_qiskit_like, compile_tket_like
from repro.baselines.paulihedral_like import compile_paulihedral_like
from repro.baselines.qaoa_ic import compile_ic_qaoa

__all__ = [
    "BaselineResult",
    "compile_nomap",
    "compile_qiskit_like",
    "compile_tket_like",
    "compile_ic_qaoa",
    "compile_paulihedral_like",
]
