"""Baseline compilers the paper compares against.

None of the real tools (Qiskit 0.26, t|ket> 0.11, the IC-QAOA compiler,
Paulihedral) are available offline, so this package provides faithful
stand-ins (substitutions documented in DESIGN.md):

* :mod:`repro.baselines.order_respecting` -- generic gate-level compilers
  that honour the input gate order (reordering only trivially-disjoint
  gates): a lookahead frontier router ("tket-like") and a no-lookahead
  stochastic router ("qiskit-like").
* :mod:`repro.baselines.qaoa_ic` -- an IC-QAOA-style compiler that
  exploits the full commutativity of ZZ cost layers (instruction-gain
  SWAP selection) but performs no SWAP dressing.
* :mod:`repro.baselines.nomap` -- the connectivity-free "NoMap" baseline
  against which all overheads are measured.

Every baseline runs on the :mod:`repro.core.pipeline` substrate and
returns a :class:`repro.core.pipeline.CompilationResult`; the old
``BaselineResult`` name is a deprecated alias.  All baselines are also
reachable by name through :func:`repro.core.registry.get_compiler`.
"""

from repro.baselines.nomap import NoMapCompiler, compile_nomap
from repro.baselines.order_respecting import (
    QiskitLikeCompiler,
    TketLikeCompiler,
    compile_qiskit_like,
    compile_tket_like,
)
from repro.baselines.paulihedral_like import (
    PaulihedralLikeCompiler,
    compile_paulihedral_like,
)
from repro.baselines.qaoa_ic import ICQAOACompiler, compile_ic_qaoa

__all__ = [
    "BaselineResult",
    "NoMapCompiler",
    "TketLikeCompiler",
    "QiskitLikeCompiler",
    "ICQAOACompiler",
    "PaulihedralLikeCompiler",
    "compile_nomap",
    "compile_qiskit_like",
    "compile_tket_like",
    "compile_ic_qaoa",
    "compile_paulihedral_like",
]


def __getattr__(name: str):
    if name == "BaselineResult":
        import warnings

        from repro.core.pipeline import CompilationResult

        # warn here (not via baselines.base) so the warning points at
        # the deprecated import site rather than at this package
        warnings.warn(
            "BaselineResult is deprecated; baselines now return "
            "repro.core.pipeline.CompilationResult",
            DeprecationWarning, stacklevel=2,
        )
        return CompilationResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
