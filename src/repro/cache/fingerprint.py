"""Canonical fingerprints for compilation values.

Every object a pass may consume -- Trotter steps, devices, gate sets,
circuits, routing/scheduling artifacts, the passes themselves -- hashes
to a stable hex digest.  Two objects with the same compilation-relevant
content produce the same fingerprint across processes and sessions, so
fingerprints can key a persistent artifact store.

Matrices are rounded to 12 decimals before hashing, matching the
:class:`~repro.core.decompose.DecomposeCache` convention, so numerically
identical unitaries built along different code paths share a key.

Unknown object types raise ``TypeError`` instead of hashing something
unstable (e.g. a default ``repr`` with a memory address): a wrong cache
key silently serves wrong artifacts, a loud failure does not.
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct

import numpy as np

DIGEST_LEN = 16
_ROUND_DECIMALS = 12


def fingerprint(*values: object) -> str:
    """Stable short hex digest of one or more values."""
    h = hashlib.sha256()
    for value in values:
        _update(h, value)
    return h.hexdigest()[:DIGEST_LEN]


def _tag(h, label: str) -> None:
    h.update(label.encode())
    h.update(b"\x00")


def _update(h, obj: object) -> None:  # noqa: PLR0912 - one dispatch table
    if obj is None:
        _tag(h, "none")
    elif isinstance(obj, bool):
        _tag(h, "bool")
        h.update(b"\x01" if obj else b"\x00")
    elif isinstance(obj, (int, np.integer)):
        _tag(h, "int")
        h.update(str(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        _tag(h, "float")
        h.update(struct.pack("<d", round(float(obj), _ROUND_DECIMALS)))
    elif isinstance(obj, (complex, np.complexfloating)):
        _tag(h, "complex")
        value = complex(obj)
        h.update(struct.pack("<dd", round(value.real, _ROUND_DECIMALS),
                             round(value.imag, _ROUND_DECIMALS)))
    elif isinstance(obj, str):
        _tag(h, "str")
        h.update(obj.encode())
    elif isinstance(obj, bytes):
        _tag(h, "bytes")
        h.update(obj)
    elif isinstance(obj, np.ndarray):
        _tag(h, "ndarray")
        rounded = np.ascontiguousarray(np.round(obj, _ROUND_DECIMALS))
        h.update(str(rounded.shape).encode())
        h.update(rounded.dtype.str.encode())
        h.update(rounded.tobytes())
    elif isinstance(obj, (tuple, list)):
        _tag(h, "seq")
        h.update(str(len(obj)).encode())
        for item in obj:
            _update(h, item)
    elif isinstance(obj, (set, frozenset)):
        _tag(h, "set")
        for item in sorted(obj, key=repr):
            _update(h, item)
    elif isinstance(obj, dict):
        _tag(h, "dict")
        for key in sorted(obj, key=repr):
            _update(h, key)
            _update(h, obj[key])
    elif _is_known_class(obj):
        _update_known(h, obj)
    elif dataclasses.is_dataclass(obj):
        _update_dataclass(h, obj)
    else:
        raise TypeError(
            f"cannot fingerprint {type(obj).__qualname__}: no canonical "
            f"serialization is registered for it"
        )


# ----------------------------------------------------------------------
# Classes with a hand-written canonical form (to skip derived caches or
# non-semantic fields the generic dataclass walk would include).
# ----------------------------------------------------------------------
def _is_known_class(obj: object) -> bool:
    from repro.core.routing import QubitMap
    from repro.devices.topology import Device
    from repro.hamiltonians.trotter import OneQubitOperator, TwoQubitOperator
    from repro.quantum.circuit import Circuit
    from repro.quantum.gates import Gate
    from repro.synthesis.gateset import GateSet

    return isinstance(obj, (Device, Circuit, Gate, GateSet, QubitMap,
                            TwoQubitOperator, OneQubitOperator))


def _update_known(h, obj: object) -> None:
    from repro.core.routing import QubitMap
    from repro.devices.topology import Device
    from repro.hamiltonians.trotter import OneQubitOperator, TwoQubitOperator
    from repro.quantum.circuit import Circuit
    from repro.quantum.gates import Gate
    from repro.synthesis.gateset import GateSet

    if isinstance(obj, QubitMap):
        # array-backed, not a dataclass: hash the canonical dict view
        _tag(h, "QubitMap")
        _update(h, obj.logical_to_physical)
    elif isinstance(obj, Device):
        # skip the derived _distance/_adjacency caches
        _tag(h, "Device")
        _update(h, obj.name)
        _update(h, obj.n_qubits)
        _update(h, obj.edges)
        _update(h, obj.edge_errors)
        _update(h, obj.edge_weights)
    elif isinstance(obj, Circuit):
        _tag(h, "Circuit")
        _update(h, obj.n_qubits)
        _update(h, len(obj.gates))
        for gate in obj.gates:
            _update(h, gate)
    elif isinstance(obj, Gate):
        # meta is provenance, not semantics (Gate equality ignores it too)
        _tag(h, "Gate")
        _update(h, obj.name)
        _update(h, obj.qubits)
        _update(h, obj.params)
        _update(h, obj.matrix)
        # Only symbolic gates hash their lazily-resolved unitary -- by
        # factor structure and parameter *names*, never values -- so a
        # gate bound up front keeps the exact pre-split byte layout.
        if obj.symbolic is not None:
            _update(h, obj.symbolic)
    elif isinstance(obj, (TwoQubitOperator, OneQubitOperator)):
        # Reproduce the generic dataclass walk of the pre-split classes
        # byte for byte for concrete operators; only symbolic operators
        # (unitary is None) additionally hash their factor structure,
        # whose Param angles contribute parameter names, not values.
        cls = type(obj)
        _tag(h, f"{cls.__module__}.{cls.__qualname__}")
        if isinstance(obj, TwoQubitOperator):
            _update(h, "qubits")
            _update(h, obj.qubits)
        else:
            _update(h, "qubit")
            _update(h, obj.qubit)
        _update(h, "unitary")
        _update(h, obj.unitary)
        _update(h, "label")
        _update(h, obj.label)
        if obj.unitary is None:
            _update(h, "factors")
            _update(h, obj.factors)
    elif isinstance(obj, GateSet):
        _tag(h, "GateSet")
        _update(h, obj.name)
        _update(h, obj.basis_coords)


def _update_dataclass(h, obj: object) -> None:
    """Generic dataclass walk: class identity plus every public field.

    Covers :class:`TrotterStep`, the routing/scheduling artifacts and any
    future dataclass artifact without per-class code; private fields
    (leading underscore, derived caches by convention) are skipped.
    """
    cls = type(obj)
    _tag(h, f"{cls.__module__}.{cls.__qualname__}")
    for field in dataclasses.fields(obj):
        if field.name.startswith("_"):
            continue
        _update(h, field.name)
        _update(h, getattr(obj, field.name))


# ----------------------------------------------------------------------
# Convenience wrappers for the four cache-key ingredients
# ----------------------------------------------------------------------
def fingerprint_step(step) -> str:
    """Fingerprint of a :class:`~repro.hamiltonians.trotter.TrotterStep`."""
    return fingerprint(step)


def fingerprint_device(device) -> str:
    """Fingerprint of a :class:`~repro.devices.topology.Device` (or None)."""
    return fingerprint(device)


def fingerprint_gateset(gateset) -> str:
    """Fingerprint of a :class:`~repro.synthesis.gateset.GateSet` (or None)."""
    return fingerprint(gateset)


def fingerprint_circuit(circuit) -> str:
    """Fingerprint of a :class:`~repro.quantum.circuit.Circuit`.

    Hardware-basis circuits could equally be keyed by their OpenQASM text
    (:func:`repro.quantum.qasm.to_qasm`); hashing the gate list directly
    also covers application-level circuits, whose arbitrary SU(4) blocks
    have no QASM form.
    """
    return fingerprint(circuit)


def fingerprint_pass(stage) -> str:
    """Fingerprint of a pipeline pass: class identity plus configuration.

    Dataclass passes hash their fields; other objects hash their public
    ``vars()``.  Attributes named in the pass's ``fingerprint_ignore``
    class attribute are excluded -- execution knobs (e.g. worker counts)
    that cannot change the pass's output must not fragment the cache.
    """
    cls = type(stage)
    ignore = set(getattr(stage, "fingerprint_ignore", ()))
    h = hashlib.sha256()
    _tag(h, f"pass:{cls.__module__}.{cls.__qualname__}")
    if dataclasses.is_dataclass(stage):
        for field in dataclasses.fields(stage):
            if field.name.startswith("_") or field.name in ignore:
                continue
            _update(h, field.name)
            _update(h, getattr(stage, field.name))
    else:
        for name in sorted(vars(stage)):
            if name.startswith("_") or name in ignore:
                continue
            _update(h, name)
            _update(h, getattr(stage, name))
    return h.hexdigest()[:DIGEST_LEN]
