"""Content-addressed compilation cache.

Compilation artifacts -- the values passes leave on a
:class:`~repro.core.pipeline.CompilationContext` -- become first-class,
content-addressed objects: every input (problem, device, gate set, pass
configuration) has a stable fingerprint, and a pass's output is stored
under ``(pass fingerprint, input fingerprint)`` so repeated and batched
compilations replay stored artifacts instead of recomputing them.

* :mod:`repro.cache.fingerprint` -- canonical content hashing for every
  compilation value (steps, devices, gate sets, circuits, passes).
* :mod:`repro.cache.store` -- the artifact stores: an in-memory LRU
  layer and an append-only disk layer safe under concurrent processes,
  combined by :class:`ArtifactCache`.
* :mod:`repro.cache.cached` -- :class:`CachedPass` /
  :class:`CachedPipeline`, the wrappers that consult the cache before
  executing a pass, plus :func:`compile_cached`.
"""

from repro.cache.cached import (
    CachedPass,
    CachedPipeline,
    UndeclaredContextReadError,
    compile_cached,
    strict_reads_enabled,
)
from repro.cache.fingerprint import (
    fingerprint,
    fingerprint_circuit,
    fingerprint_device,
    fingerprint_gateset,
    fingerprint_pass,
    fingerprint_step,
)
from repro.cache.store import ArtifactCache, DiskArtifactStore, MemoryArtifactStore

__all__ = [
    "ArtifactCache",
    "CachedPass",
    "CachedPipeline",
    "DiskArtifactStore",
    "MemoryArtifactStore",
    "UndeclaredContextReadError",
    "compile_cached",
    "strict_reads_enabled",
    "fingerprint",
    "fingerprint_circuit",
    "fingerprint_device",
    "fingerprint_gateset",
    "fingerprint_pass",
    "fingerprint_step",
]
