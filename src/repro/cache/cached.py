"""Cache-aware pass execution: skip a pass when its output is stored.

The cache key of one pass execution is
``(pass fingerprint, input-artifact fingerprint)``:

* the *pass fingerprint* is the pass class plus its configuration
  (:func:`repro.cache.fingerprint.fingerprint_pass`);
* the *input fingerprint* covers exactly the context fields the pass
  reads.  Passes declare them via a ``reads`` class attribute (every
  built-in pass does); a pass without a declaration is keyed on the full
  context -- every input and every artifact -- which can only
  *over*-invalidate, never serve a stale artifact.

On a miss the pass runs and the fields it ``writes`` (same convention;
default: every artifact field) are snapshotted into the store; writing
a field outside the declaration raises on the spot.  On a hit the
snapshot is applied and the pass body never executes.  Either way
``ctx.timings`` gets its usual per-pass entry (the lookup time, on a
hit) and ``ctx.cache_events`` records ``"hit"`` or ``"miss"`` per pass.

Contract: passes write artifacts by *assignment* (``ctx.working = ...``)
and never mutate an upstream artifact in place -- the write guard
compares object identity, so an in-place mutation of e.g. a predecessor's
circuit would evade it and make warm runs diverge from cold ones.
Every built-in pass follows this; custom passes must too to be cached.

Because the snapshot *is* the pass's output, cached and uncached
compilation produce bit-identical results; the golden-equivalence tests
pin that property for every registry compiler.
"""

from __future__ import annotations

import os

from repro.cache.fingerprint import fingerprint, fingerprint_pass
from repro.cache.store import ArtifactCache
from repro.core.pipeline import (
    CompilationContext,
    CompilationResult,
    PassPipeline,
    run_pipeline,
)

#: Context fields set by the driver (compilation inputs).
INPUT_FIELDS = ("step", "gateset", "device", "seed", "initial", "binding")

#: Context fields set by passes (compilation artifacts), in write order.
ARTIFACT_FIELDS = (
    "working", "assignment", "qap_cost", "routed", "scheduled",
    "app_circuit", "circuit", "metrics", "n_swaps", "n_dressed",
    "initial_map", "final_map",
)

#: Infrastructure fields any pass may touch without declaring them:
#: ``timings``/``cache_events`` are pipeline bookkeeping, ``cancel`` is
#: cooperative cancellation (excluded from cache keys by design), and
#: ``cache`` is the content-addressed decompose memo, which accelerates
#: but never changes an output.  The static checker (``repro lint``
#: RPR001) exempts exactly this set.
INFRA_FIELDS = frozenset({"timings", "cache_events", "cancel", "cache"})

_CONTEXT_FIELDS = frozenset(INPUT_FIELDS + ARTIFACT_FIELDS)

#: Environment variable enabling the strict read guard (see
#: :class:`UndeclaredContextReadError`).  The test suite runs with it
#: set so every compile in CI audits the declarations dynamically.
STRICT_ENV_VAR = "REPRO_CACHE_STRICT"


class UndeclaredContextReadError(RuntimeError):
    """A pass read a context field missing from its ``reads`` tuple.

    An undeclared read is the one contract violation the normal runtime
    cannot see: the cache key omits an input the pass actually
    consumed, so two compilations differing only in that field share a
    key and the second silently receives the first's artifact.

    Deliberately **not** an ``AttributeError`` subclass -- a pass
    probing fields with ``getattr(ctx, name, default)`` or ``hasattr``
    would silently swallow the violation instead of surfacing it.
    """


def strict_reads_enabled() -> bool:
    """Whether ``REPRO_CACHE_STRICT`` requests the dynamic read guard."""
    return os.environ.get(STRICT_ENV_VAR, "") not in ("", "0")


class _StrictContext:
    """A read-auditing view of a :class:`CompilationContext`.

    Attribute loads of undeclared compilation fields raise
    :class:`UndeclaredContextReadError`; everything else (writes,
    infrastructure fields, methods) forwards to the wrapped context.
    Passes return the view from ``run``; :class:`CachedPass` unwraps it
    before snapshotting.
    """

    __slots__ = ("_ctx", "_allowed", "_pass_name")

    def __init__(self, ctx: CompilationContext, allowed: frozenset[str],
                 pass_name: str) -> None:
        object.__setattr__(self, "_ctx", ctx)
        object.__setattr__(self, "_allowed", allowed)
        object.__setattr__(self, "_pass_name", pass_name)

    def _audit(self, name: str) -> None:
        if name in _CONTEXT_FIELDS and name not in self._allowed:
            raise UndeclaredContextReadError(
                f"pass {self._pass_name!r} read context field {name!r} "
                f"outside its declared reads; the cache key omits it, "
                f"so warm runs would serve stale artifacts -- add "
                f"{name!r} to the pass's reads tuple"
            )

    def require(self, attribute: str):
        self._audit(attribute)
        return self._ctx.require(attribute)

    def __getattr__(self, name: str):
        self._audit(name)
        return getattr(self._ctx, name)

    def __setattr__(self, name: str, value) -> None:
        setattr(self._ctx, name, value)


def _unwrap(ctx):
    return ctx._ctx if isinstance(ctx, _StrictContext) else ctx


def count_cache_hits(events: dict[str, str]) -> int:
    """Hits in a ``cache_events`` record (the single place that knows
    the event vocabulary)."""
    return sum(1 for value in events.values() if value == "hit")


def context_key(stage, ctx: CompilationContext) -> str:
    """The content-addressed key of running ``stage`` on ``ctx`` now."""
    reads = getattr(stage, "reads", None)
    if reads is None:
        reads = INPUT_FIELDS + ARTIFACT_FIELDS
    parts: list[object] = [fingerprint_pass(stage)]
    for name in reads:
        parts.append(name)
        parts.append(getattr(ctx, name))
    return fingerprint(*parts)


class CachedPass:
    """Wrap one pass with an artifact-store lookup.

    Satisfies the :class:`~repro.core.pipeline.Pass` protocol under the
    wrapped pass's own name, so pipelines, timing records and surgery
    helpers (``replaced``/``without``) treat it as the original stage.
    """

    def __init__(self, inner, cache: ArtifactCache) -> None:
        self.inner = inner
        self.cache = cache
        self.name = inner.name

    def run(self, ctx: CompilationContext) -> CompilationContext:
        key = context_key(self.inner, ctx)
        snapshot = self.cache.get(key)
        if snapshot is not None:
            for field_name, value in snapshot.items():
                setattr(ctx, field_name, value)
            ctx.cache_events[self.name] = "hit"
            self.cache.record_event(self.name, hit=True)
            return ctx
        writes = getattr(self.inner, "writes", None)
        before = (None if writes is None else
                  {name: getattr(ctx, name) for name in ARTIFACT_FIELDS
                   if name not in writes})
        reads = getattr(self.inner, "reads", None)
        if reads is not None and strict_reads_enabled():
            allowed = (frozenset(reads)
                       | frozenset(writes if writes is not None
                                   else ARTIFACT_FIELDS)
                       | INFRA_FIELDS)
            run_ctx: CompilationContext = _StrictContext(
                ctx, allowed, self.name)
        else:
            run_ctx = ctx
        result = self.inner.run(run_ctx)
        if result is None:
            raise TypeError(
                f"pass {self.name!r} returned None; run(ctx) must return "
                f"the context"
            )
        ctx = _unwrap(result)
        if writes is None:
            writes = ARTIFACT_FIELDS
        else:
            # a wrong declaration would make warm hits silently diverge
            # from cold runs; catch it loudly on the miss path instead
            undeclared = [name for name, value in before.items()
                          if getattr(ctx, name) is not value]
            if undeclared:
                raise ValueError(
                    f"pass {self.name!r} wrote context field(s) "
                    f"{undeclared} not declared in its writes={writes}; "
                    f"fix the declaration or caching will serve partial "
                    f"snapshots"
                )
        self.cache.put(key, {name: getattr(ctx, name) for name in writes})
        ctx.cache_events[self.name] = "miss"
        self.cache.record_event(self.name, hit=False)
        return ctx


class CachedPipeline(PassPipeline):
    """A :class:`PassPipeline` whose every stage consults one cache.

    Drop-in: ``CachedPipeline(pipeline, cache).run(ctx)`` produces the
    same context as ``pipeline.run(ctx)``, with stored stages skipped.
    """

    def __init__(self, pipeline: PassPipeline, cache: ArtifactCache) -> None:
        super().__init__(CachedPass(stage, cache)
                         for stage in pipeline.passes)
        object.__setattr__(self, "cache", cache)


def compile_cached(compiler, step, cache: ArtifactCache,
                   initial=None, binding=None,
                   cancel=None) -> CompilationResult:
    """Compile one step through ``compiler``'s pipeline with caching.

    ``compiler`` is any :class:`~repro.core.pipeline.PipelineCompiler`
    (typically from :func:`repro.core.registry.get_compiler`); the
    context is built by the same :func:`run_pipeline` that
    ``compiler.compile`` uses, so the result is bit-identical to the
    uncached call by construction.

    A symbolic ``step`` fingerprints by parameter *names*, not values,
    and the structural passes do not read ``binding``, so every binding
    of one circuit shape shares the unify-through-schedule cache prefix;
    only the bind pass (and decomposition behind it) keys on the angle
    values.
    """
    return run_pipeline(
        CachedPipeline(compiler.build_pipeline(), cache), step,
        gateset=compiler.gateset,
        device=getattr(compiler, "device", None),
        seed=compiler.seed,
        cache=getattr(compiler, "cache", None),
        initial=initial,
        binding=binding,
        cancel=cancel,
    )
