"""Artifact stores: where content-addressed compilation artifacts live.

Artifacts are pickled at ``put`` time and un-pickled at ``get`` time in
*every* layer, so a cached value never aliases live compilation state --
a caller mutating a returned circuit cannot corrupt the store.

* :class:`MemoryArtifactStore` -- in-process LRU layer (bytes-valued).
* :class:`DiskArtifactStore` -- one file per key under a directory,
  written via temp-file + atomic rename and never overwritten, so any
  number of concurrent processes (the sweep engine's
  ``ProcessPoolExecutor`` workers, several batch services) can share one
  directory: the content behind a key is immutable, a half-written file
  is never visible under its final name, and a corrupt file reads as a
  miss.
* :class:`ArtifactCache` -- the tiered front the cached pipeline talks
  to: memory first, then disk (promoting hits), with global and
  per-pass hit/miss counters.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from pathlib import Path

_DEFAULT_MEMORY_LIMIT = 1024


class MemoryArtifactStore:
    """In-process LRU store mapping keys to pickled artifact bytes."""

    def __init__(self, limit: int = _DEFAULT_MEMORY_LIMIT) -> None:
        self.limit = limit
        self._entries: OrderedDict[str, bytes] = OrderedDict()

    def get(self, key: str) -> bytes | None:
        payload = self._entries.get(key)
        if payload is not None:
            self._entries.move_to_end(key)
        return payload

    def put(self, key: str, payload: bytes) -> None:
        if self.limit <= 0:
            return
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)

    def discard(self, key: str) -> None:
        self._entries.pop(key, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


class DiskArtifactStore:
    """Append-only on-disk store: one ``<key>.pkl`` file per artifact.

    Keys are hex digests; files are sharded by the first two characters
    to keep directories small.  Writes go to a per-process temp file
    followed by ``os.replace`` -- atomic on POSIX -- and an existing file
    is never rewritten (same key means same content), which makes the
    store safe under concurrent writers without locks.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> bytes | None:
        path = self._path(key)
        try:
            payload = path.read_bytes()
        except OSError:
            return None
        if not payload:
            # torn empty file: a miss, and evicted so a later put can
            # write the key instead of refusing because the path exists
            self.discard(key)
            return None
        return payload

    def put(self, key: str, payload: bytes) -> None:
        path = self._path(key)
        if path.exists():
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        finally:
            # a failed write must not leak its temp file (a SIGKILL
            # between write and replace still can; those are bounded by
            # worker count and ignored by every read path)
            tmp.unlink(missing_ok=True)

    def discard(self, key: str) -> None:
        """Drop one entry (only used to evict unreadable payloads)."""
        try:
            self._path(key).unlink()
        except OSError:
            pass

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()


class ArtifactCache:
    """Tiered artifact cache with hit/miss accounting.

    ``directory=None`` gives a purely in-memory cache (one process, one
    session); with a directory, artifacts persist across processes and
    sessions and the memory layer acts as a read cache over the disk
    layer.  ``get``/``put`` move whole artifact *snapshots* (dicts of
    context fields, see :mod:`repro.cache.cached`) but the store is
    value-agnostic: anything picklable works.
    """

    def __init__(self, directory: str | Path | None = None, *,
                 memory_limit: int = _DEFAULT_MEMORY_LIMIT) -> None:
        self.memory = MemoryArtifactStore(limit=memory_limit)
        self.disk = DiskArtifactStore(directory) if directory else None
        self.hits = 0
        self.misses = 0
        self.pass_events: dict[str, dict[str, int]] = {}

    @property
    def directory(self) -> Path | None:
        return self.disk.root if self.disk is not None else None

    # ------------------------------------------------------------------
    def get(self, key: str) -> object | None:
        payload = self.memory.get(key)
        if payload is None and self.disk is not None:
            payload = self.disk.get(key)
            if payload is not None:
                self.memory.put(key, payload)
        if payload is None:
            self.misses += 1
            return None
        try:
            value = pickle.loads(payload)
        except Exception:
            # a corrupt entry is a miss; evict it so a later put can
            # rewrite the key instead of the bad payload living forever
            self.memory.discard(key)
            if self.disk is not None:
                self.disk.discard(key)
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: object) -> None:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self.memory.put(key, payload)
        if self.disk is not None:
            try:
                self.disk.put(key, payload)
            except OSError:
                # the cache is an optimization: an unwritable or full
                # directory must not abort a compilation that already
                # succeeded -- the artifact stays in the memory layer
                pass

    # ------------------------------------------------------------------
    def record_event(self, pass_name: str, hit: bool) -> None:
        """Count one per-pass lookup outcome (kept next to ctx.timings)."""
        events = self.pass_events.setdefault(pass_name,
                                             {"hits": 0, "misses": 0})
        events["hits" if hit else "misses"] += 1

    def stats(self) -> dict:
        """Counters snapshot: global hits/misses plus per-pass events.

        The single read path for the counters: the batch service's
        summary, the server's ``/metrics`` endpoint and the sweep report
        all consume this plain dict (or deltas of two snapshots via
        :func:`stats_delta`) instead of poking ``hits``/``misses``
        directly.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "memory_entries": len(self.memory),
            "per_pass": {name: dict(events)
                         for name, events in self.pass_events.items()},
        }

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (entries stay; only accounting
        resets -- e.g. a metrics scrape-and-reset cycle)."""
        self.hits = 0
        self.misses = 0
        self.pass_events = {}


def stats_delta(before: dict, after: dict) -> dict:
    """What happened between two :meth:`ArtifactCache.stats` snapshots.

    Returns the same shape as ``stats()`` with counters subtracted
    (``memory_entries`` stays absolute: it is a gauge, not a counter).
    """
    per_pass: dict[str, dict[str, int]] = {}
    for name, events in after["per_pass"].items():
        prior = before["per_pass"].get(name, {})
        per_pass[name] = {key: value - prior.get(key, 0)
                          for key, value in events.items()}
    return {
        "hits": after["hits"] - before["hits"],
        "misses": after["misses"] - before["misses"],
        "memory_entries": after["memory_entries"],
        "per_pass": per_pass,
    }


class LockingArtifactCache(ArtifactCache):
    """An :class:`ArtifactCache` safe to share across threads.

    The compile server's worker pool is thread-based and all workers
    share one cache per tenant; a reentrant lock around every public
    operation keeps the LRU order and the counters consistent.  (The
    process-pool paths don't need this: each process owns its cache and
    only the lock-free disk layer is shared.)
    """

    def __init__(self, directory: str | Path | None = None, *,
                 memory_limit: int = _DEFAULT_MEMORY_LIMIT) -> None:
        super().__init__(directory, memory_limit=memory_limit)
        self._lock = threading.RLock()

    def get(self, key: str) -> object | None:
        with self._lock:
            return super().get(key)

    def put(self, key: str, value: object) -> None:
        with self._lock:
            super().put(key, value)

    def record_event(self, pass_name: str, hit: bool) -> None:
        with self._lock:
            super().record_event(pass_name, hit)

    def stats(self) -> dict:
        with self._lock:
            return super().stats()

    def reset_stats(self) -> None:
        with self._lock:
            super().reset_stats()


# ----------------------------------------------------------------------
# Per-process cache registry: pool workers reuse one ArtifactCache per
# directory across the many tasks a worker serves, keeping the memory
# layer warm over the shared disk layer.
# ----------------------------------------------------------------------
_PROCESS_CACHES: dict[str, ArtifactCache] = {}


def process_cache(directory: str | Path | None, *,
                  memory_limit: int = _DEFAULT_MEMORY_LIMIT,
                  ) -> ArtifactCache | None:
    """The calling process's shared cache for ``directory`` (or None).

    ``memory_limit`` applies when this process first opens the
    directory; later callers share the existing instance.
    """
    if directory is None:
        return None
    key = str(directory)
    cache = _PROCESS_CACHES.get(key)
    if cache is None:
        cache = _PROCESS_CACHES.setdefault(
            key, ArtifactCache(key, memory_limit=memory_limit))
    return cache


def salted_directory(root: str | Path) -> Path:
    """A cache directory under ``root`` scoped to the current sources.

    Fingerprints cover pass *configuration*, not pass *code*: editing an
    algorithm without touching its knobs would replay artifacts the old
    code produced.  Nesting persistent caches under a source digest (the
    same convention the sweep store uses) makes any source change start
    a fresh cache instead.

    Idempotent: an already-salted path comes back unchanged, so the
    several layers that enforce salting (``BatchCompiler``,
    ``run_engine``, the CLI) compose without nesting digests.
    """
    from repro.analysis.store import source_digest

    root = Path(root)
    digest = source_digest()
    return root if root.name == digest else root / digest
