"""Static contract checkers for the reproduction's domain invariants.

``python -m repro lint`` runs five AST-based checkers over the tree:

* **RPR001 pass-contract** -- ``reads``/``writes`` declarations match
  what each pass's ``run`` actually touches (cache-key soundness);
* **RPR002 fingerprint-coverage** -- every type reachable from the
  compilation context is fingerprintable (cache invalidation);
* **RPR003 metrics-schema** -- every service counter exists in
  ``COUNTER_NAMES`` and the operator docs;
* **RPR004 determinism** -- no unseeded RNGs or wall-clock values on
  the compile path (bit-identity);
* **RPR005 async-hygiene** -- no blocking calls on the service event
  loop, no ``await`` under a ``threading.Lock``.

Pure stdlib ``ast``; no third-party analysis dependencies.
"""

from repro.lint.framework import (
    Checker,
    Finding,
    Module,
    Project,
    all_checkers,
    register_checker,
    run_lint,
)

__all__ = [
    "Checker",
    "Finding",
    "Module",
    "Project",
    "all_checkers",
    "register_checker",
    "run_lint",
]
