"""The static-analysis substrate: findings, projects, checker registry.

The compiler's correctness rests on contracts no general-purpose linter
knows about: a pass's ``reads``/``writes`` declarations must match what
its ``run`` body actually touches (cache-key soundness), every type a
pass can leave on the context must be fingerprintable (cache
invalidation), every metrics counter must exist in the schema before
production increments it, compile-path modules must be seed-driven
(bit-identity), and the async front end must never block its event
loop.  This module provides the shared machinery those domain checkers
run on:

* :class:`Finding` -- one ``file:line`` diagnostic with a check id,
  message and severity.
* :class:`Project` -- the file set under analysis: a mapping of
  repo-relative paths to sources, with lazily-parsed ASTs.  Built from
  the repo tree in production and from literal dicts in tests, so every
  checker's true-positive/true-negative behaviour pins on small fixture
  snippets without touching the filesystem.
* :class:`Checker` + :func:`register_checker` -- the registry.  Checker
  modules self-register on import; :func:`all_checkers` imports the
  built-in suite.
* :func:`run_lint` -- run (a selection of) checkers over a project and
  return sorted findings.

Everything is stdlib ``ast`` -- no third-party analysis dependencies.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

#: Severity vocabulary, mildest first.  ``error`` marks a contract
#: violation that can produce wrong artifacts or runtime crashes;
#: ``warning`` marks over-declaration/coverage drift that degrades the
#: system (cache fragmentation, dead schema entries, doc rot) without
#: corrupting results.
SEVERITIES = ("warning", "error")

#: Directory prefixes (relative to the repo root) scanned by default.
SOURCE_PREFIX = "src/repro/"

#: Documentation files some checkers cross-reference.
DOC_SUFFIXES = (".md",)


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, which contract, what went wrong."""

    path: str
    line: int
    check: str
    message: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}; "
                             f"expected one of {SEVERITIES}")

    def to_dict(self) -> dict:
        """The stable ``--json`` record (schema version 1)."""
        return {
            "check": self.check,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}: {self.check} "
                f"[{self.severity}] {self.message}")


class Module:
    """One Python source file with a lazily-parsed AST."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self._tree: ast.Module | None = None
        self._error: SyntaxError | None = None

    @property
    def tree(self) -> ast.Module | None:
        """The parsed AST, or ``None`` when the source does not parse
        (the syntax error is reported as its own finding)."""
        if self._tree is None and self._error is None:
            try:
                self._tree = ast.parse(self.source, filename=self.path)
            except SyntaxError as exc:
                self._error = exc
        return self._tree

    @property
    def syntax_error(self) -> SyntaxError | None:
        self.tree  # noqa: B018 - force the parse attempt
        return self._error


class Project:
    """The file set one lint run analyses.

    ``files`` maps repo-relative POSIX paths (``src/repro/...`` /
    ``docs/...``) to file contents.  Checkers address modules by path
    suffix so fixture projects in tests can mirror the real layout with
    only the files a checker consumes.
    """

    def __init__(self, files: dict[str, str]) -> None:
        self.files = dict(files)
        self._modules: dict[str, Module] = {}

    @classmethod
    def from_root(cls, repo_root: Path) -> "Project":
        """Scan ``src/repro/**/*.py`` plus ``docs/*.md`` under a repo."""
        repo_root = Path(repo_root)
        files: dict[str, str] = {}
        source_root = repo_root / "src" / "repro"
        for path in sorted(source_root.rglob("*.py")):
            rel = path.relative_to(repo_root).as_posix()
            files[rel] = path.read_text()
        docs_root = repo_root / "docs"
        if docs_root.is_dir():
            for path in sorted(docs_root.rglob("*")):
                if path.suffix in DOC_SUFFIXES and path.is_file():
                    rel = path.relative_to(repo_root).as_posix()
                    files[rel] = path.read_text()
        return cls(files)

    # ------------------------------------------------------------------
    def modules(self, prefix: str = SOURCE_PREFIX) -> list[Module]:
        """Every Python module under ``prefix``, sorted by path."""
        return [self._module(path) for path in sorted(self.files)
                if path.startswith(prefix) and path.endswith(".py")]

    def module(self, suffix: str) -> Module | None:
        """The unique module whose path ends with ``suffix``, if any."""
        matches = [path for path in self.files
                   if path.endswith(suffix) and path.endswith(".py")]
        if len(matches) != 1:
            return None
        return self._module(matches[0])

    def text(self, suffix: str) -> tuple[str, str] | None:
        """``(path, contents)`` of the unique file ending in ``suffix``."""
        matches = [path for path in self.files if path.endswith(suffix)]
        if len(matches) != 1:
            return None
        return matches[0], self.files[matches[0]]

    def _module(self, path: str) -> Module:
        if path not in self._modules:
            self._modules[path] = Module(path, self.files[path])
        return self._modules[path]


# ----------------------------------------------------------------------
# Checker registry
# ----------------------------------------------------------------------
class Checker:
    """One contract checker.  Subclasses set ``id``/``name``/``doc``
    and implement :meth:`check`."""

    id: str = ""
    name: str = ""
    description: str = ""

    def check(self, project: Project) -> list[Finding]:
        raise NotImplementedError


_CHECKERS: dict[str, type[Checker]] = {}


def register_checker(cls: type[Checker]) -> type[Checker]:
    """Class decorator: add one checker to the registry."""
    if not cls.id:
        raise ValueError(f"checker {cls.__name__} has no id")
    claimed = _CHECKERS.get(cls.id)
    if claimed is not None and claimed is not cls:
        raise ValueError(f"checker id {cls.id!r} already registered "
                         f"by {claimed.__name__}")
    _CHECKERS[cls.id] = cls
    return cls


def all_checkers() -> dict[str, type[Checker]]:
    """The registry with the built-in suite imported (self-registering)."""
    from repro.lint import (  # noqa: F401 - imported for registration
        async_hygiene,
        contracts,
        determinism,
        metrics_schema,
    )
    from repro.lint import fingerprints  # noqa: F401

    return dict(sorted(_CHECKERS.items()))


def run_lint(project: Project, *, select: list[str] | None = None,
             ignore: list[str] | None = None) -> list[Finding]:
    """Run checkers over ``project`` and return sorted findings.

    ``select`` keeps only the named check ids; ``ignore`` drops the
    named ids (applied after ``select``).  Unknown ids in either raise
    ``ValueError`` so CI typos fail loudly instead of silently checking
    nothing.  Syntax errors in analysed modules surface as ``RPR000``
    findings rather than aborting the run.
    """
    registry = all_checkers()
    for requested in (select or []) + (ignore or []):
        if requested not in registry:
            raise ValueError(
                f"unknown check id {requested!r} "
                f"(known: {', '.join(registry)})"
            )
    wanted = {
        check_id: cls for check_id, cls in registry.items()
        if (select is None or check_id in select)
        and (ignore is None or check_id not in ignore)
    }
    findings: list[Finding] = []
    for module in project.modules():
        error = module.syntax_error
        if error is not None:
            findings.append(Finding(
                path=module.path, line=error.lineno or 1, check="RPR000",
                message=f"syntax error: {error.msg}", severity="error",
            ))
    for cls in wanted.values():
        findings.extend(cls().check(project))
    return sorted(findings)


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin for every import in a module.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    sleep`` maps ``sleep -> time.sleep``.  Lets checkers resolve call
    sites through whatever aliasing a module uses.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def resolve_call(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """The fully-qualified dotted path of a call target, alias-expanded.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    under ``import numpy as np``; unresolvable heads return the dotted
    name as written (so literal matches still work).
    """
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return name
    return f"{origin}.{rest}" if rest else origin


def string_tuple(node: ast.AST) -> tuple[str, ...] | None:
    """The value of a literal tuple/list of strings, else ``None``."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values: list[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        values.append(element.value)
    return tuple(values)


@dataclass(frozen=True)
class PassClass:
    """One pass declaration found in a module: the class plus its
    ``reads``/``writes``/``fingerprint_ignore`` ClassVar tuples."""

    module: Module
    node: ast.ClassDef
    run: ast.FunctionDef
    reads: tuple[str, ...] | None
    writes: tuple[str, ...] | None
    fingerprint_ignore: tuple[str, ...]


def _class_tuple(node: ast.ClassDef, name: str) -> tuple[str, ...] | None:
    """A literal string-tuple class attribute (``reads = (...,)``)."""
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name) and stmt.target.id == name:
                return string_tuple(stmt.value)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return string_tuple(stmt.value)
    return None


def iter_pass_classes(module: Module) -> list[PassClass]:
    """Pass declarations in a module: classes with a ``run`` method and
    a ``reads`` or ``writes`` class attribute (the cache contract)."""
    tree = module.tree
    if tree is None:
        return []
    passes: list[PassClass] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        run = next(
            (stmt for stmt in node.body
             if isinstance(stmt, ast.FunctionDef) and stmt.name == "run"),
            None,
        )
        if run is None:
            continue
        reads = _class_tuple(node, "reads")
        writes = _class_tuple(node, "writes")
        if reads is None and writes is None:
            continue
        passes.append(PassClass(
            module=module, node=node, run=run, reads=reads, writes=writes,
            fingerprint_ignore=_class_tuple(node, "fingerprint_ignore") or (),
        ))
    return passes
