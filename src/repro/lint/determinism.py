"""RPR004: compile-path modules must be seed-driven, never clock-driven.

Every golden test in this repo asserts *bit identity*: the same
``(step, device, gateset, seed)`` must produce the same circuit down to
the last float, across processes, cache states and worker counts --
that is what makes the content-addressed cache sound and warm serving
byte-identical to cold.  One unseeded RNG draw or wall-clock-dependent
value inside the compile path breaks the contract invisibly: results
stay plausible, caches keep hitting, and only a cross-run diff weeks
later exposes it.

This checker walks the compile-path packages (``core/``, ``mapping/``,
``synthesis/``, ``baselines/``) and flags (**error**):

* ``numpy.random.default_rng()`` / ``Generator``/``RandomState``
  construction with **no seed argument**;
* legacy global-state numpy RNG calls (``np.random.shuffle`` etc. --
  any ``numpy.random.*`` that is not an explicit generator
  construction);
* stdlib ``random`` module calls (module-level functions share hidden
  global state; ``random.Random(seed)`` with a seed is accepted);
* wall-clock value sources: ``time.time``, ``datetime.now`` /
  ``utcnow``/``today``, ``uuid.uuid1``/``uuid4``.

``time.perf_counter``/``monotonic``/``process_time`` are allowed: the
pipeline uses them for the ``timings`` metadata, which is deliberately
outside every fingerprint and every golden comparison.  Alias-aware:
``import numpy.random as npr; npr.shuffle(...)`` is still caught.
"""

from __future__ import annotations

import ast

from repro.lint.framework import (
    Checker,
    Finding,
    Project,
    import_aliases,
    register_checker,
    resolve_call,
)

#: Package fragments forming the compile path (bit-identity contract).
COMPILE_PATH_FRAGMENTS = (
    "repro/core/",
    "repro/mapping/",
    "repro/synthesis/",
    "repro/baselines/",
)

#: Generator constructors that are fine *with* a seed argument.
SEEDED_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "random.Random",
})

#: Wall-clock / entropy sources never allowed on the compile path.
CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "uuid.uuid1",
    "uuid.uuid4",
})


@register_checker
class DeterminismChecker(Checker):
    id = "RPR004"
    name = "determinism"
    description = ("no unseeded RNGs, global random state, or "
                   "wall-clock values inside compile-path modules -- "
                   "the bit-identity contract every golden test and "
                   "every cache hit assumes")

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules():
            if not any(fragment in module.path
                       for fragment in COMPILE_PATH_FRAGMENTS):
                continue
            tree = module.tree
            if tree is None:
                continue
            aliases = import_aliases(tree)
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                resolved = resolve_call(node.func, aliases)
                if resolved is None:
                    continue
                finding = self._classify(module.path, node, resolved)
                if finding is not None:
                    findings.append(finding)
        return findings

    def _classify(self, path: str, node: ast.Call,
                  resolved: str) -> Finding | None:
        if resolved in SEEDED_CONSTRUCTORS:
            if not node.args and not node.keywords:
                return Finding(
                    path=path, line=node.lineno, check=self.id,
                    message=f"{resolved}() without a seed draws OS "
                            f"entropy; every compile-path RNG must be "
                            f"constructed from an explicit seed "
                            f"(bit-identity contract)",
                )
            return None
        if resolved.startswith("numpy.random."):
            return Finding(
                path=path, line=node.lineno, check=self.id,
                message=f"{resolved}(...) uses numpy's hidden global "
                        f"RNG state; results depend on call order "
                        f"across the whole process -- construct a "
                        f"seeded default_rng(seed) instead",
            )
        if resolved.startswith("random.") \
                and resolved not in SEEDED_CONSTRUCTORS:
            return Finding(
                path=path, line=node.lineno, check=self.id,
                message=f"{resolved}(...) uses the stdlib random "
                        f"module's global state; use a seeded "
                        f"random.Random(seed) or numpy default_rng",
            )
        if resolved in CLOCK_CALLS:
            return Finding(
                path=path, line=node.lineno, check=self.id,
                message=f"{resolved}() is wall-clock/entropy dependent; "
                        f"compile-path values must be functions of "
                        f"(step, device, gateset, seed) only "
                        f"(perf_counter for timings metadata is exempt)",
            )
        return None
