"""RPR005: the asyncio front end must never block its event loop.

The serving layer runs every connection on one event loop
(``repro.service.server``); compiles execute in worker threads or
processes precisely so the loop only ever parses, enqueues and writes.
One blocking call inside an ``async def`` -- a ``time.sleep``, a
synchronous subprocess, an un-timed lock acquire -- stalls *every*
connection, turning a single slow request into a whole-service outage
that load tests rarely catch (it needs concurrency plus the slow path).

Flags, inside ``async def`` bodies under ``src/repro/service/``
(**error** unless noted):

* ``time.sleep`` (use ``asyncio.sleep``);
* synchronous subprocess calls (``subprocess.run``/``call``/
  ``check_call``/``check_output``/``Popen``, ``os.system``);
* synchronous network/file transports: ``socket.*`` constructors,
  ``urllib.request.urlopen``, ``http.client`` connections;
* ``<lock>.acquire(...)`` that is not awaited and passes no
  ``timeout=``/``blocking=False`` -- an indefinite block on the loop
  (awaited acquires are asyncio primitives and fine);
* ``await`` while holding a ``threading.Lock``/``RLock`` (a ``with
  self._lock:`` block whose body awaits): the loop parks *inside* the
  critical section, and any thread contending for the lock deadlocks
  against the suspended coroutine.

Nested ``def`` functions inside an ``async def`` are skipped (they run
wherever they are called, typically in an executor); nested ``async
def`` are visited in their own right.
"""

from __future__ import annotations

import ast

from repro.lint.framework import (
    Checker,
    Finding,
    Project,
    import_aliases,
    register_checker,
    resolve_call,
)

SERVICE_PREFIX_FRAGMENT = "repro/service/"

BLOCKING_CALLS = {
    "time.sleep": "blocks the event loop; use asyncio.sleep",
    "subprocess.run": "synchronous subprocess blocks the loop; use "
                      "asyncio.create_subprocess_exec or an executor",
    "subprocess.call": "synchronous subprocess blocks the loop",
    "subprocess.check_call": "synchronous subprocess blocks the loop",
    "subprocess.check_output": "synchronous subprocess blocks the loop",
    "subprocess.Popen": "synchronous subprocess management on the loop",
    "os.system": "synchronous shell-out blocks the loop",
    "socket.socket": "synchronous socket on the event loop",
    "socket.create_connection": "synchronous connect blocks the loop",
    "urllib.request.urlopen": "synchronous HTTP blocks the loop",
    "http.client.HTTPConnection": "synchronous HTTP blocks the loop",
    "http.client.HTTPSConnection": "synchronous HTTP blocks the loop",
}

_LOCK_FACTORIES = frozenset({"threading.Lock", "threading.RLock",
                             "threading.Condition", "threading.Semaphore",
                             "threading.BoundedSemaphore"})


def _threading_lock_names(tree: ast.Module,
                          aliases: dict[str, str]) -> set[str]:
    """Attribute/variable names bound to ``threading.Lock()``-likes
    anywhere in the module (``self._lock = threading.Lock()`` ->
    ``_lock``)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)):
            continue
        resolved = resolve_call(node.value.func, aliases)
        if resolved not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            if isinstance(target, ast.Attribute):
                names.add(target.attr)
            elif isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _direct_children(func: ast.AsyncFunctionDef) -> list[ast.AST]:
    """All nodes of an async function body, not descending into nested
    (non-async) function definitions."""
    nodes: list[ast.AST] = []
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        nodes.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return nodes


def _is_awaited(node: ast.Call, awaited: set[int]) -> bool:
    return id(node) in awaited


@register_checker
class AsyncHygieneChecker(Checker):
    id = "RPR005"
    name = "async-hygiene"
    description = ("no blocking calls (sleep, sync subprocess/socket, "
                   "untimed lock acquire) inside async def bodies, and "
                   "no await while holding a threading lock -- one "
                   "blocked event loop stalls every connection")

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules():
            if SERVICE_PREFIX_FRAGMENT not in module.path:
                continue
            tree = module.tree
            if tree is None:
                continue
            aliases = import_aliases(tree)
            lock_names = _threading_lock_names(tree, aliases)
            for node in ast.walk(tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    findings.extend(self._check_async(
                        module.path, node, aliases, lock_names))
        return findings

    def _check_async(self, path: str, func: ast.AsyncFunctionDef,
                     aliases: dict[str, str],
                     lock_names: set[str]) -> list[Finding]:
        findings: list[Finding] = []
        body = _direct_children(func)
        awaited = {id(node.value) for node in body
                   if isinstance(node, ast.Await)
                   and isinstance(node.value, ast.Call)}
        for node in body:
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(path, func, node,
                                                 aliases, awaited))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                findings.extend(self._check_with(path, func, node,
                                                 lock_names))
        return findings

    def _check_call(self, path: str, func: ast.AsyncFunctionDef,
                    node: ast.Call, aliases: dict[str, str],
                    awaited: set[int]) -> list[Finding]:
        findings: list[Finding] = []
        resolved = resolve_call(node.func, aliases)
        if resolved in BLOCKING_CALLS:
            findings.append(Finding(
                path=path, line=node.lineno, check=self.id,
                message=f"async def {func.name}: {resolved}(...) -- "
                        f"{BLOCKING_CALLS[resolved]}",
            ))
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
                and not _is_awaited(node, awaited)):
            bounded = any(
                keyword.arg in ("timeout", "blocking")
                for keyword in node.keywords
            ) or node.args
            if not bounded:
                findings.append(Finding(
                    path=path, line=node.lineno, check=self.id,
                    message=f"async def {func.name}: .acquire() without "
                            f"a timeout (and not awaited) can block the "
                            f"event loop indefinitely; pass timeout= or "
                            f"move the lock off the loop",
                ))
        return findings

    def _check_with(self, path: str, func: ast.AsyncFunctionDef,
                    node: ast.With | ast.AsyncWith,
                    lock_names: set[str]) -> list[Finding]:
        held = [
            item for item in node.items
            if (isinstance(item.context_expr, ast.Attribute)
                and item.context_expr.attr in lock_names)
            or (isinstance(item.context_expr, ast.Name)
                and item.context_expr.id in lock_names)
        ]
        if not held or isinstance(node, ast.AsyncWith):
            return []
        for inner in ast.walk(node):
            if isinstance(inner, ast.Await):
                name = (ast.unparse(held[0].context_expr)
                        if hasattr(ast, "unparse") else "the lock")
                return [Finding(
                    path=path, line=inner.lineno, check=self.id,
                    message=f"async def {func.name}: await while "
                            f"holding threading lock {name} -- the "
                            f"coroutine suspends inside the critical "
                            f"section and contending threads deadlock "
                            f"against the parked event loop",
                )]
        return []
