"""RPR001: pass ``reads``/``writes`` declarations must match ``run``.

The content-addressed cache keys a pass execution on exactly the
context fields the pass *declares* it reads
(:func:`repro.cache.cached.context_key`).  The runtime guard in
``CachedPass`` validates ``writes`` -- and only on a cache miss.  An
**undeclared read** is the failure the runtime cannot see: the cache
key omits an input the pass actually consumed, so two compilations that
differ only in that field collide on one key and the second silently
receives the first's artifact.  This checker proves the declaration
sound at lint time by walking each pass's ``run`` body (following
helper calls that receive the context, within the defining module) and
cross-checking every ``ctx.<field>`` load/store against the declared
tuples.

Findings:

* undeclared read (**error**) -- under-scoped cache key, stale-hit bug;
* undeclared write (**error**) -- warm snapshots would miss the field
  (mirrors the runtime guard, but catches it before any compile runs);
* declared-but-unused read (**warning**) -- over-scoped key: compiles
  differing only in the unused field miss needlessly (cache
  fragmentation);
* declared-but-unused write (**warning**) -- snapshots carry a stale
  upstream value under this pass's name.

Infrastructure fields every pass may touch without declaring them --
``timings``/``cache_events`` (bookkeeping the pipeline owns),
``cancel`` (cooperative cancellation; excluded from cache keys by
design) and ``cache`` (the decompose memo is content-addressed itself,
so it accelerates but never changes an output) -- are exempt.
"""

from __future__ import annotations

import ast

from repro.lint.framework import (
    Checker,
    Finding,
    Module,
    PassClass,
    Project,
    iter_pass_classes,
    register_checker,
)

from repro.cache.cached import INFRA_FIELDS

#: Context attributes a pass may use without declaring them -- the
#: same set the runtime strict-read guard (REPRO_CACHE_STRICT) allows,
#: imported so the static and dynamic checks cannot drift apart.
EXEMPT_FIELDS = INFRA_FIELDS

#: Context *methods* (attribute accesses that are calls, not fields).
CONTEXT_METHODS = frozenset({"require"})


def _module_functions(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    """Top-level functions of a module, by name."""
    return {node.name: node for node in tree.body
            if isinstance(node, ast.FunctionDef)}


def _class_methods(node: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {stmt.name: stmt for stmt in node.body
            if isinstance(stmt, ast.FunctionDef)}


class _CtxAccessVisitor(ast.NodeVisitor):
    """Collect context-field loads/stores in one function body.

    ``ctx_names`` are the local names bound to the context in this
    function.  Calls to module-level helpers or sibling methods that
    receive the context recurse with the parameter renamed, so a pass
    that splits ``run`` across private helpers is analysed whole.
    """

    def __init__(self, collector: "_PassAnalysis", ctx_names: frozenset[str],
                 functions: dict[str, ast.FunctionDef],
                 methods: dict[str, ast.FunctionDef]) -> None:
        self.collector = collector
        self.ctx_names = ctx_names
        self.functions = functions
        self.methods = methods

    def _is_ctx(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id in self.ctx_names

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._is_ctx(node.value):
            if isinstance(node.ctx, ast.Store):
                self.collector.stores[node.attr] = min(
                    self.collector.stores.get(node.attr, node.lineno),
                    node.lineno,
                )
            elif node.attr in CONTEXT_METHODS:
                pass  # handled at the call site below
            elif not isinstance(node.ctx, ast.Del):
                self.collector.loads.setdefault(node.attr, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Attribute) and self._is_ctx(target.value):
            self.collector.loads.setdefault(target.attr, node.lineno)
            self.collector.stores.setdefault(target.attr, node.lineno)
        self.generic_visit(node.value)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # ctx.require("field") / getattr(ctx, "field") are reads by name
        if (isinstance(func, ast.Attribute) and self._is_ctx(func.value)
                and func.attr in CONTEXT_METHODS):
            for arg in node.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    self.collector.loads.setdefault(arg.value, node.lineno)
                else:
                    self.collector.dynamic.append(node.lineno)
            for arg in node.args:
                self.visit(arg)
            return
        if (isinstance(func, ast.Name) and func.id == "getattr"
                and node.args and self._is_ctx(node.args[0])):
            if (len(node.args) > 1 and isinstance(node.args[1], ast.Constant)
                    and isinstance(node.args[1].value, str)):
                self.collector.loads.setdefault(node.args[1].value,
                                                node.lineno)
            else:
                self.collector.dynamic.append(node.lineno)
            for arg in node.args[1:]:
                self.visit(arg)
            return
        # helper calls that receive the context: follow them
        callee: ast.FunctionDef | None = None
        skip_self = 0
        if isinstance(func, ast.Name):
            callee = self.functions.get(func.id)
        elif (isinstance(func, ast.Attribute)
              and isinstance(func.value, ast.Name)
              and func.value.id == "self"):
            callee = self.methods.get(func.attr)
            skip_self = 1
        passes_ctx = (any(self._is_ctx(arg) for arg in node.args)
                      or any(self._is_ctx(kw.value) for kw in node.keywords))
        if callee is not None and passes_ctx:
            self.collector.follow(callee, node, skip_self, self.ctx_names,
                                  self.functions, self.methods)
        self.generic_visit(node)


class _PassAnalysis:
    """Interprocedural (module-local) accumulation of context accesses."""

    def __init__(self) -> None:
        self.loads: dict[str, int] = {}
        self.stores: dict[str, int] = {}
        self.dynamic: list[int] = []
        self._visited: set[str] = set()

    def analyse(self, func: ast.FunctionDef, ctx_names: frozenset[str],
                functions: dict[str, ast.FunctionDef],
                methods: dict[str, ast.FunctionDef]) -> None:
        key = f"{func.name}:{','.join(sorted(ctx_names))}"
        if key in self._visited:
            return
        self._visited.add(key)
        visitor = _CtxAccessVisitor(self, ctx_names, functions, methods)
        for stmt in func.body:
            visitor.visit(stmt)

    def follow(self, callee: ast.FunctionDef, call: ast.Call, skip_self: int,
               ctx_names: frozenset[str],
               functions: dict[str, ast.FunctionDef],
               methods: dict[str, ast.FunctionDef]) -> None:
        """Map the caller's context arguments onto the callee's params."""
        params = [arg.arg for arg in callee.args.args][skip_self:]
        ctx_params = set()
        for position, arg in enumerate(call.args):
            if (isinstance(arg, ast.Name) and arg.id in ctx_names
                    and position < len(params)):
                ctx_params.add(params[position])
        for keyword in call.keywords:
            if (isinstance(keyword.value, ast.Name)
                    and keyword.value.id in ctx_names and keyword.arg):
                ctx_params.add(keyword.arg)
        if ctx_params:
            self.analyse(callee, frozenset(ctx_params), functions, methods)


@register_checker
class PassContractChecker(Checker):
    id = "RPR001"
    name = "pass-contract"
    description = ("a Pass's reads/writes ClassVars must cover exactly "
                   "the context fields its run() touches; undeclared "
                   "reads under-scope cache keys (stale artifact hits)")

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules():
            for declared in iter_pass_classes(module):
                findings.extend(self._check_pass(module, declared))
        return findings

    def _check_pass(self, module: Module,
                    declared: PassClass) -> list[Finding]:
        tree = module.tree
        assert tree is not None  # iter_pass_classes already parsed it
        functions = _module_functions(tree)
        methods = _class_methods(declared.node)
        ctx_param = self._context_param(declared.run)
        if ctx_param is None:
            return []
        analysis = _PassAnalysis()
        analysis.analyse(declared.run, frozenset({ctx_param}),
                         functions, methods)

        reads = set(declared.reads or ())
        writes = set(declared.writes or ())
        label = declared.node.name
        findings: list[Finding] = []
        for line in analysis.dynamic:
            findings.append(Finding(
                path=module.path, line=line, check=self.id,
                severity="warning",
                message=f"{label}: dynamic context access is not "
                        f"statically checkable; use a literal field name",
            ))
        for field, line in sorted(analysis.loads.items()):
            if field in EXEMPT_FIELDS or field in CONTEXT_METHODS:
                continue
            if field not in reads | writes:
                findings.append(Finding(
                    path=module.path, line=line, check=self.id,
                    message=f"{label}: undeclared context read "
                            f"{field!r} -- the cache key omits it, so "
                            f"compilations differing only in {field!r} "
                            f"share one key and warm runs serve stale "
                            f"artifacts; add it to reads",
                ))
        for field, line in sorted(analysis.stores.items()):
            if field in EXEMPT_FIELDS:
                continue
            if field not in writes:
                findings.append(Finding(
                    path=module.path, line=line, check=self.id,
                    message=f"{label}: undeclared context write "
                            f"{field!r} -- cache snapshots omit it, so "
                            f"a warm hit diverges from the cold run; "
                            f"add it to writes",
                ))
        for field in sorted(reads - set(analysis.loads)):
            findings.append(Finding(
                path=module.path, line=declared.node.lineno, check=self.id,
                severity="warning",
                message=f"{label}: declared read {field!r} is never "
                        f"used by run(); the over-scoped cache key "
                        f"fragments the cache across values of "
                        f"{field!r} that cannot change the output",
            ))
        for field in sorted(writes - set(analysis.stores)):
            findings.append(Finding(
                path=module.path, line=declared.node.lineno, check=self.id,
                severity="warning",
                message=f"{label}: declared write {field!r} is never "
                        f"assigned by run(); warm snapshots would "
                        f"re-apply a stale upstream value under this "
                        f"pass's name",
            ))
        return findings

    @staticmethod
    def _context_param(run: ast.FunctionDef) -> str | None:
        """The name of ``run``'s context parameter (after ``self``)."""
        params = [arg.arg for arg in run.args.args]
        if params and params[0] == "self":
            params = params[1:]
        return params[0] if params else None
