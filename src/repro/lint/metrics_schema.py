"""RPR003: every service counter must exist in the schema and the docs.

``ServiceMetrics`` pre-populates its counter dict from
``COUNTER_NAMES`` and ``increment()`` does ``self.counters[name] +=
amount`` -- an increment with a name outside the schema raises
``KeyError``, and it raises in *production paths only*: the counter
fires on a worker crash, a journal failure, a disconnect, exactly the
paths the unit tests exercise least.  This checker proves at lint time
that

* every literal counter key incremented anywhere under
  ``src/repro/service/`` (``metrics.increment("x")`` or
  ``counters["x"]``) exists in ``COUNTER_NAMES`` (**error**);
* every ``COUNTER_NAMES`` entry is incremented somewhere (**warning**
  -- a dead counter exports misleading zeros forever);
* every ``COUNTER_NAMES`` entry appears in ``docs/architecture.md``
  (**warning** -- the doc's failure-mode/metrics tables are the
  operator contract; an undocumented counter is invisible in an
  incident).  The Prometheus adapter renders counters generically from
  the same snapshot dict, so schema membership is exactly exposure.

Non-literal keys (``increment(name)`` inside ``ServiceMetrics`` itself,
loops over the schema) are skipped -- the schema membership of the
literal call sites is the contract.
"""

from __future__ import annotations

import ast

from repro.lint.framework import (
    Checker,
    Finding,
    Project,
    register_checker,
    string_tuple,
)

SERVICE_PREFIX_FRAGMENT = "repro/service/"
DOC_SUFFIX = "docs/architecture.md"


def _counter_names(project: Project) -> tuple[str, ...] | None:
    metrics_mod = project.module("repro/service/metrics.py")
    if metrics_mod is None or metrics_mod.tree is None:
        return None
    for node in metrics_mod.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) \
                        and target.id == "COUNTER_NAMES":
                    return string_tuple(node.value)
    return None


def _literal_counter_uses(project: Project) -> dict[str, tuple[str, int]]:
    """Counter name -> first (path, line) using it as a literal key."""
    uses: dict[str, tuple[str, int]] = {}
    for module in project.modules():
        if SERVICE_PREFIX_FRAGMENT not in module.path:
            continue
        tree = module.tree
        if tree is None:
            continue
        for node in ast.walk(tree):
            name: str | None = None
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "increment"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                name = node.args[0].value
            elif (isinstance(node, ast.Subscript)
                  and isinstance(node.value, ast.Attribute)
                  and node.value.attr == "counters"
                  and isinstance(node.slice, ast.Constant)
                  and isinstance(node.slice.value, str)):
                name = node.slice.value
            if name is not None and name not in uses:
                uses[name] = (module.path, node.lineno)
    return uses


@register_checker
class MetricsSchemaChecker(Checker):
    id = "RPR003"
    name = "metrics-schema"
    description = ("every counter incremented in the service layer must "
                   "be declared in COUNTER_NAMES (else KeyError on the "
                   "production path that fires it) and documented; "
                   "declared counters must be live")

    def check(self, project: Project) -> list[Finding]:
        names = _counter_names(project)
        if names is None:
            return []  # fixture project without the metrics module
        metrics_mod = project.module("repro/service/metrics.py")
        assert metrics_mod is not None
        declared = set(names)
        uses = _literal_counter_uses(project)
        findings: list[Finding] = []
        for name, (path, line) in sorted(uses.items()):
            if name not in declared:
                findings.append(Finding(
                    path=path, line=line, check=self.id,
                    message=f"counter {name!r} is incremented but absent "
                            f"from COUNTER_NAMES -- this raises KeyError "
                            f"on the production path that first fires "
                            f"it; add it to the schema",
                ))
        for name in names:
            if name not in uses:
                findings.append(Finding(
                    path=metrics_mod.path, line=1, check=self.id,
                    severity="warning",
                    message=f"counter {name!r} is declared in "
                            f"COUNTER_NAMES but never incremented in "
                            f"the service layer; it exports a "
                            f"misleading constant zero",
                ))
        doc = project.text(DOC_SUFFIX)
        if doc is not None:
            doc_path, doc_text = doc
            for name in names:
                if f"`{name}`" not in doc_text:
                    findings.append(Finding(
                        path=doc_path, line=1, check=self.id,
                        severity="warning",
                        message=f"counter `{name}` is exported by "
                                f"/metrics but undocumented in the "
                                f"architecture doc's counter tables; "
                                f"operators cannot interpret it in an "
                                f"incident",
                    ))
        return findings
