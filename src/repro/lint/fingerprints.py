"""RPR002: every type a pass can cache must be fingerprintable.

The artifact cache keys on canonical fingerprints
(:mod:`repro.cache.fingerprint`).  Unknown types raise ``TypeError`` at
runtime -- loud, but only once a compile actually reaches them -- and
the subtler failure is silent: a *hand-fingerprinted* class (one with a
branch in ``_update_known``) that grows a dataclass field the branch
does not hash keeps producing the **old** fingerprint, so caches stop
invalidating on the new field.  PR 3's runtime can never catch that;
only comparing the class definition against the fingerprint walk can.

This checker cross-references three sources, all statically:

1. the context fields the cache snapshots (``INPUT_FIELDS`` +
   ``ARTIFACT_FIELDS`` in ``repro/cache/cached.py``) and their type
   annotations on ``CompilationContext``;
2. the transitive closure of dataclass field annotations reachable from
   those types (plus every registered pass's config fields, which
   ``fingerprint_pass`` walks);
3. the fingerprint module's dispatch: the ``_is_known_class`` tuple and
   the per-class ``obj.<attr>`` accesses inside ``_update_known``.

Findings:

* a reachable type that is neither primitive, ndarray, container,
  known, nor a dataclass (**error** -- ``fingerprint()`` will raise, or
  a future refactor could hash an unstable ``repr``);
* a known-class dataclass field absent from its ``_update_known``
  branch (**error** -- field drift: caches silently stop invalidating);
* a bare container annotation (``list`` with no element type) on a
  reachable dataclass field (**warning** -- the runtime walk still
  hashes the elements, but coverage of the element type can no longer
  be proven here).

Per-class exemptions (fields deliberately outside a fingerprint) are
listed in :data:`INTENTIONALLY_UNHASHED` with the reason recorded where
the decision lives.
"""

from __future__ import annotations

import ast

from repro.lint.framework import (
    Checker,
    Finding,
    Module,
    Project,
    iter_pass_classes,
    register_checker,
)

#: Builtin scalar types the fingerprint dispatch hashes directly.
PRIMITIVES = frozenset({
    "int", "float", "bool", "str", "bytes", "complex", "None", "object",
    "np.ndarray", "numpy.ndarray",
})

#: Typed containers the dispatch walks element-wise.
CONTAINERS = frozenset({"list", "tuple", "dict", "set", "frozenset",
                        "List", "Tuple", "Dict", "Set", "FrozenSet",
                        "Optional", "Union", "Mapping", "Sequence"})

#: Fields of hand-fingerprinted classes that are *deliberately* not
#: hashed.  ``Gate.meta`` is provenance (term labels, dressing
#: history); ``Gate.__eq__`` ignores it too, so hashing it would split
#: keys for semantically identical gates.
INTENTIONALLY_UNHASHED: dict[str, frozenset[str]] = {
    "Gate": frozenset({"meta"}),
}

#: Annotations naming these are accepted without resolution (runtime
#: protocols / numpy scalar aliases that the dispatch covers).
OPAQUE_OK = frozenset({"Any", "ClassVar"})


class _ClassInfo:
    def __init__(self, module: Module, node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        self.is_dataclass = any(
            (isinstance(dec, ast.Name) and dec.id == "dataclass")
            or (isinstance(dec, ast.Call)
                and isinstance(dec.func, ast.Name)
                and dec.func.id == "dataclass")
            or (isinstance(dec, ast.Attribute) and dec.attr == "dataclass")
            for dec in node.decorator_list
        )
        #: (name, annotation) for every annotated field, ClassVars skipped.
        self.fields: list[tuple[str, ast.AST]] = []
        for stmt in node.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                annotation = stmt.annotation
                if (isinstance(annotation, ast.Subscript)
                        and isinstance(annotation.value, ast.Name)
                        and annotation.value.id == "ClassVar"):
                    continue
                self.fields.append((stmt.target.id, annotation))


def _index_classes(project: Project) -> dict[str, _ClassInfo]:
    """Bare class name -> definition, across the whole source tree."""
    index: dict[str, _ClassInfo] = {}
    for module in project.modules():
        tree = module.tree
        if tree is None:
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name not in index:
                index[node.name] = _ClassInfo(module, node)
    return index


def annotation_names(node: ast.AST) -> tuple[set[str], bool]:
    """Type names referenced by an annotation, plus a bare-container flag.

    ``TrotterStep | None`` yields ``{"TrotterStep"}``;
    ``dict[str, float]`` yields ``{"str", "float"}``; a bare ``list``
    yields ``(set(), True)`` -- walkable at runtime, unverifiable here.
    """
    names: set[str] = set()
    bare = False

    def walk(item: ast.AST) -> None:
        nonlocal bare
        if isinstance(item, ast.Constant):
            if item.value is None:
                return
            if isinstance(item.value, str):
                # quoted forward reference: parse it as an annotation
                try:
                    inner = ast.parse(item.value, mode="eval").body
                except SyntaxError:
                    return
                walk(inner)
            return
        if isinstance(item, ast.Name):
            if item.id in CONTAINERS:
                bare = True
            else:
                names.add(item.id)
            return
        if isinstance(item, ast.Attribute):
            dotted = []
            value: ast.AST = item
            while isinstance(value, ast.Attribute):
                dotted.append(value.attr)
                value = value.value
            if isinstance(value, ast.Name):
                dotted.append(value.id)
                names.add(".".join(reversed(dotted)))
            return
        if isinstance(item, ast.Subscript):
            head = item.value
            if isinstance(head, ast.Name) and head.id in CONTAINERS:
                walk(item.slice)
                return
            walk(head)
            walk(item.slice)
            return
        if isinstance(item, ast.BinOp) and isinstance(item.op, ast.BitOr):
            walk(item.left)
            walk(item.right)
            return
        if isinstance(item, ast.Tuple):
            for element in item.elts:
                walk(element)
            return
        # Ellipsis in tuple[..., ...] arrives as Constant, handled above.

    walk(node)
    return names, bare


def _known_class_names(fingerprint_mod: Module) -> set[str]:
    """Class names in ``_is_known_class``'s isinstance tuple."""
    tree = fingerprint_mod.tree
    names: set[str] = set()
    if tree is None:
        return names
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "_is_known_class":
            for call in ast.walk(node):
                if (isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Name)
                        and call.func.id == "isinstance"
                        and len(call.args) == 2):
                    arg = call.args[1]
                    elements = (arg.elts if isinstance(arg, ast.Tuple)
                                else [arg])
                    for element in elements:
                        if isinstance(element, ast.Name):
                            names.add(element.id)
    return names


def _known_class_accesses(fingerprint_mod: Module) -> dict[str, set[str]]:
    """Per-class ``obj.<attr>`` reads inside ``_update_known`` branches."""
    tree = fingerprint_mod.tree
    accesses: dict[str, set[str]] = {}
    if tree is None:
        return accesses
    update_known = next(
        (node for node in ast.walk(tree)
         if isinstance(node, ast.FunctionDef) and node.name == "_update_known"),
        None,
    )
    if update_known is None:
        return accesses

    def branch_classes(test: ast.AST) -> list[str]:
        if (isinstance(test, ast.Call) and isinstance(test.func, ast.Name)
                and test.func.id == "isinstance" and len(test.args) == 2):
            arg = test.args[1]
            elements = arg.elts if isinstance(arg, ast.Tuple) else [arg]
            return [element.id for element in elements
                    if isinstance(element, ast.Name)]
        return []

    def obj_attrs(body: list[ast.stmt]) -> set[str]:
        attrs: set[str] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if (isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "obj"):
                    attrs.add(node.attr)
        return attrs

    def walk_if(node: ast.If) -> None:
        classes = branch_classes(node.test)
        attrs = obj_attrs(node.body)
        for name in classes:
            accesses.setdefault(name, set()).update(attrs)
        for stmt in node.orelse:
            if isinstance(stmt, ast.If):
                walk_if(stmt)

    for stmt in update_known.body:
        if isinstance(stmt, ast.If):
            walk_if(stmt)
    return accesses


def _field_tuples(cached_mod: Module) -> tuple[tuple[str, ...],
                                               tuple[str, ...]]:
    """``INPUT_FIELDS``/``ARTIFACT_FIELDS`` literals from the cache."""
    tree = cached_mod.tree
    inputs: tuple[str, ...] = ()
    artifacts: tuple[str, ...] = ()
    if tree is None:
        return inputs, artifacts
    from repro.lint.framework import string_tuple

    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if target.id == "INPUT_FIELDS":
                        inputs = string_tuple(node.value) or ()
                    elif target.id == "ARTIFACT_FIELDS":
                        artifacts = string_tuple(node.value) or ()
    return inputs, artifacts


@register_checker
class FingerprintCoverageChecker(Checker):
    id = "RPR002"
    name = "fingerprint-coverage"
    description = ("every type reachable from cached context fields and "
                   "pass configs must be fingerprintable, and "
                   "hand-fingerprinted classes must hash every public "
                   "dataclass field (cache-invalidation drift)")

    def check(self, project: Project) -> list[Finding]:
        fingerprint_mod = project.module("repro/cache/fingerprint.py")
        cached_mod = project.module("repro/cache/cached.py")
        pipeline_mod = project.module("repro/core/pipeline.py")
        if fingerprint_mod is None or cached_mod is None \
                or pipeline_mod is None:
            return []  # fixture project without the cache layer
        known = _known_class_names(fingerprint_mod)
        accesses = _known_class_accesses(fingerprint_mod)
        inputs, artifacts = _field_tuples(cached_mod)
        index = _index_classes(project)

        context = index.get("CompilationContext")
        findings: list[Finding] = []
        seen: set[str] = set()
        # Field drift on every hand-fingerprinted dataclass, reachable
        # or not: a class in _is_known_class is cached *somewhere*.
        for name in sorted(known):
            info = index.get(name)
            if info is not None and info.is_dataclass:
                findings.extend(self._drift(name, info, accesses))
        if context is not None:
            cached_fields = set(inputs) | set(artifacts)
            for field_name, annotation in context.fields:
                if field_name not in cached_fields:
                    continue
                names, bare = annotation_names(annotation)
                if bare:
                    findings.append(self._bare(context, field_name,
                                               annotation))
                for name in sorted(names):
                    findings.extend(self._resolve(
                        name, index, known, accesses, seen,
                        origin=f"CompilationContext.{field_name}",
                        module=context.module, line=annotation.lineno,
                    ))
        for module in project.modules():
            for declared in iter_pass_classes(module):
                info = index.get(declared.node.name)
                if info is None or not info.is_dataclass:
                    continue
                skip = set(declared.fingerprint_ignore)
                for field_name, annotation in info.fields:
                    if field_name in skip or field_name.startswith("_"):
                        continue
                    names, bare = annotation_names(annotation)
                    for name in sorted(names):
                        findings.extend(self._resolve(
                            name, index, known, accesses, seen,
                            origin=f"{declared.node.name}.{field_name} "
                                   f"(pass config)",
                            module=module, line=annotation.lineno,
                        ))
        return findings

    def _bare(self, info: _ClassInfo, field_name: str,
              annotation: ast.AST) -> Finding:
        return Finding(
            path=info.module.path, line=annotation.lineno, check=self.id,
            severity="warning",
            message=f"{info.node.name}.{field_name} is annotated with a "
                    f"bare container; element types cannot be verified "
                    f"against the fingerprint dispatch -- annotate the "
                    f"element type",
        )

    def _resolve(self, name: str, index: dict[str, _ClassInfo],
                 known: set[str], accesses: dict[str, set[str]],
                 seen: set[str], *, origin: str, module: Module,
                 line: int) -> list[Finding]:
        if name in PRIMITIVES or name in OPAQUE_OK or name in seen:
            return []
        seen.add(name)
        findings: list[Finding] = []
        info = index.get(name)
        if name in known:
            # drift is checked globally in check(); still recurse so
            # factor/param types behind known classes get resolved
            if info is not None and info.is_dataclass:
                findings.extend(self._recurse(info, index, known, accesses,
                                              seen))
            return findings
        if info is None:
            findings.append(Finding(
                path=module.path, line=line, check=self.id,
                severity="warning",
                message=f"cannot resolve type {name!r} reachable from "
                        f"{origin}; fingerprint coverage unverified",
            ))
            return findings
        if not info.is_dataclass:
            findings.append(Finding(
                path=module.path, line=line, check=self.id,
                message=f"type {name!r} reachable from {origin} is "
                        f"neither fingerprint-known (_is_known_class) "
                        f"nor a dataclass; fingerprint() will raise "
                        f"TypeError the first time it is cached",
            ))
            return findings
        findings.extend(self._recurse(info, index, known, accesses, seen))
        return findings

    def _recurse(self, info: _ClassInfo, index: dict[str, _ClassInfo],
                 known: set[str], accesses: dict[str, set[str]],
                 seen: set[str]) -> list[Finding]:
        findings: list[Finding] = []
        for field_name, annotation in info.fields:
            if field_name.startswith("_"):
                continue  # private fields are skipped by the generic walk
            names, bare = annotation_names(annotation)
            if bare:
                findings.append(self._bare(info, field_name, annotation))
            for name in sorted(names):
                findings.extend(self._resolve(
                    name, index, known, accesses, seen,
                    origin=f"{info.node.name}.{field_name}",
                    module=info.module, line=annotation.lineno,
                ))
        return findings

    def _drift(self, name: str, info: _ClassInfo,
               accesses: dict[str, set[str]]) -> list[Finding]:
        """Hand-fingerprinted dataclass: every public field must be
        hashed by its ``_update_known`` branch (or exempted)."""
        hashed = accesses.get(name, set())
        exempt = INTENTIONALLY_UNHASHED.get(name, frozenset())
        findings: list[Finding] = []
        for field_name, _annotation in info.fields:
            if field_name.startswith("_") or field_name in exempt:
                continue
            if field_name not in hashed:
                findings.append(Finding(
                    path=info.module.path, line=info.node.lineno,
                    check=self.id,
                    message=f"{name}.{field_name} is not hashed by its "
                            f"_update_known branch in the fingerprint "
                            f"module -- caches will not invalidate when "
                            f"it changes; hash it or record the "
                            f"exemption in INTENTIONALLY_UNHASHED",
                ))
        return findings
