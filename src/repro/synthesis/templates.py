"""Decomposition templates: per-term-structure synthesis reuse.

The structure/parameter split compiles a circuit's *shape* once and binds
angles per request.  Decomposition is the one pipeline stage that must
re-run per binding; this module makes the re-run cheap by memoising
decomposed blocks per **term structure** rather than per matrix:

* a gate emitted from exponential factors carries a template key
  ``(signatures, angles, conjugate_swap, pre_swap)`` in its metadata --
  the factor structure plus the resolved angles and orientation flags;
* the factor matrices are deterministic functions of their signature and
  angle, and the fold order is fixed, so the key determines the folded
  matrix bit for bit -- two gates with equal keys share a block;
* on a miss the block is fetched through the caller's
  :class:`~repro.core.decompose.DecomposeCache` (the matrix-keyed memo),
  so the template path returns bit-identical circuits to the plain path.

For products of XX/YY/ZZ exponentials (ZZ cost layers, exchange terms,
Ising/Heisenberg Trotter factors) the Weyl-chamber coordinates -- and
hence the hardware two-qubit gate count -- also have a closed analytic
form, computed here without building any matrix; unknown structures fall
back to numeric KAK via the delegate cache.
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np

from repro.synthesis.cnot_basis import cnot_count
from repro.synthesis.weyl import _best_candidate

_TEMPLATE_LIMIT = 4096

# Axis of each analytically-known factor signature in CAN(x, y, z);
# "zz:" is the QAOA cost factor (a ZZ exponential with an empty label).
_AXIS = {"pauli:XX": 0, "pauli:YY": 1, "pauli:ZZ": 2, "zz:": 2}


def analytic_weyl(signatures, angles, conjugate_swap: bool = False,
                  pre_swap: bool = False):
    """Canonical Weyl coordinates of a factor product, matrix-free.

    Supported structures: products of XX/YY/ZZ exponentials.  The three
    generators mutually commute, so the product is ``CAN(x, y, z)`` with
    per-axis angle sums.  SWAP conjugation (operand orientation) is a
    no-op on the coordinates -- SWAP maps ``P (x) Q`` to ``Q (x) P`` and
    each generator is symmetric -- and a leading SWAP (dressing) equals
    ``exp(i pi/4 (XX+YY+ZZ))`` up to global phase, adding ``pi/4`` per
    axis.  The raw sums are reduced to the Weyl chamber by the same
    move-orbit search numeric KAK uses, so the result matches
    :func:`~repro.synthesis.weyl.weyl_coordinates` of the folded matrix.

    Returns ``None`` for factor structures with no analytic form (the
    caller falls back to numeric KAK).
    """
    del conjugate_swap  # no-op on symmetric generators
    theta = [0.0, 0.0, 0.0]
    for signature, angle in zip(signatures, angles):
        axis = _AXIS.get(signature)
        if axis is None:
            return None
        theta[axis] += float(angle)
    if pre_swap:
        for axis in range(3):
            theta[axis] += math.pi / 4
    coords, _word, _signs, _shifts = _best_candidate(np.array(theta))
    return coords


def predicted_cnot_count(signatures, angles, conjugate_swap: bool = False,
                         pre_swap: bool = False):
    """CNOT cost of a factor product from its analytic coordinates.

    ``None`` when the structure has no analytic form.
    """
    coords = analytic_weyl(signatures, angles, conjugate_swap, pre_swap)
    if coords is None:
        return None
    return cnot_count(coords)


class TemplateCache:
    """LRU memo of decomposed blocks keyed by term structure + binding.

    Keyed by ``(gateset, solve, seed, signatures, angles, conjugate_swap,
    pre_swap)``.  Repeat bindings of the same structure (every edge of a
    QAOA cost layer shares one angle; a sweep revisits a handful of
    angle sets) hit here without folding factor matrices or hashing
    matrix bytes.  Misses delegate to the matrix-keyed
    :class:`~repro.core.decompose.DecomposeCache`, which keeps template
    blocks bit-identical to the plain decomposition path.
    """

    def __init__(self, maxsize: int = _TEMPLATE_LIMIT) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict[tuple, tuple] = OrderedDict()

    def key(self, gateset, template, *, solve: bool, seed: int) -> tuple:
        """The memo key of a template under a gateset/solve/seed context."""
        signatures, angles, conjugate_swap, pre_swap = template
        return (gateset.name, solve, seed, tuple(signatures), tuple(angles),
                bool(conjugate_swap), bool(pre_swap))

    def lookup(self, key: tuple):
        """Probe by precomputed key; counts a hit or a miss."""
        hit = self._store.get(key)
        if hit is not None:
            self.hits += 1
            self._store.move_to_end(key)
            return hit
        self.misses += 1
        return None

    def insert(self, key: tuple, value: tuple) -> None:
        """Store a decomposed block under a precomputed key."""
        if self.maxsize > 0:
            self._store[key] = value
            if len(self._store) > self.maxsize:
                self._store.popitem(last=False)

    def get(self, gateset, gate, template, *, solve: bool, seed: int,
            cache):
        key = self.key(gateset, template, solve=solve, seed=seed)
        hit = self.lookup(key)
        if hit is not None:
            return hit
        value = cache.get(gateset, gate.unitary(), solve, seed)
        self.insert(key, value)
        return value

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        """Lookup counters plus current occupancy."""
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._store), "maxsize": self.maxsize}


#: Shared process-wide template memo (mirrors the default DecomposeCache
#: handling: callers may supply their own instance for isolation).
DEFAULT_TEMPLATES = TemplateCache()


def reset_default_templates() -> None:
    """Clear the shared template memo (test isolation hook)."""
    DEFAULT_TEMPLATES.clear()
