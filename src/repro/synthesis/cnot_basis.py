"""Analytic synthesis of arbitrary two-qubit unitaries into CNOTs (or CZs).

The construction is exact and phase-correct:

* 0 CNOTs when the target is a tensor product (class ``(0,0,0)``),
* 1 CNOT for the CNOT class ``(pi/4, 0, 0)``,
* 2 CNOTs for any class with ``z = 0``, using
  ``CAN(x, 0, y) = CX (Rx(-2x) (x) Rz(-2y)) CX``,
* 3 CNOTs otherwise, using the identity (derived from conjugating the
  canonical generators through a CNOT and verified to machine precision)::

      CAN(x, y, z) = CX . (Rx(-2x) (x) Rz(-2z)) . CZ . (Rx(2y) (x) I) . CZ . CX

  where the trailing ``CZ . CX`` pair is a single controlled-iY, itself one
  CNOT conjugated by local gates, giving three CNOTs in total -- matching
  the paper's Figure 5 (a dressed SWAP costs 3 CNOTs, not 5).

Locals for a concrete target are obtained by *alignment*: both the target
and the constructed core have canonical KAK decompositions with identical
Weyl coordinates, so the target equals the core conjugated by single-qubit
gates (and a global phase).
"""

from __future__ import annotations

import math

import numpy as np

from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate
from repro.synthesis.batch import (
    _as_batch,
    batch_expand_1q,
    batch_kak_decompose,
    batch_rx_matrices,
    batch_rz_matrices,
)
from repro.synthesis.weyl import kak_decompose, mirror_x_z

_PI4 = math.pi / 4
_TOL = 1e-8


def cnot_count(coords: tuple[float, float, float], tol: float = 1e-7) -> int:
    """Minimal number of CNOTs for a gate with the given Weyl coordinates."""
    x, y, z = coords
    if max(abs(x), abs(y), abs(z)) < tol:
        return 0
    if abs(x - _PI4) < tol and abs(y) < tol and abs(z) < tol:
        return 1
    if abs(z) < tol:
        return 2
    return 3


def _core_gates(x: float, y: float, z: float, count: int) -> list[Gate]:
    """Core two-qubit circuit (on qubits 0, 1) with class ``(x, y, z)``."""
    if count == 0:
        return []
    if count == 1:
        return [Gate("CNOT", (0, 1))]
    if count == 2:
        # CAN(x, 0, y): class (x, y, 0) for x >= y >= 0.
        return [
            Gate("CNOT", (0, 1)),
            Gate("RX", (0,), (-2 * x,)),
            Gate("RZ", (1,), (-2 * y,)),
            Gate("CNOT", (0, 1)),
        ]
    # count == 3; gates listed in application (time) order, so the product
    # reads right-to-left relative to the docstring formula.  The trailing
    # CZ.CX factor is emitted as a single CNOT via the controlled-iY
    # identity  CZ.CX = e^{i pi/4} (Rz(pi/2) (x) Rz(pi/2)) CX (I (x) Rz(-pi/2)),
    # keeping the entangling-gate count at three.
    return [
        Gate("RZ", (1,), (-math.pi / 2,)),
        Gate("CNOT", (0, 1)),
        Gate("RZ", (0,), (math.pi / 2,)),
        Gate("RZ", (1,), (math.pi / 2,)),
        Gate("RX", (0,), (2 * y,)),
        Gate("CZ", (0, 1)),
        Gate("RX", (0,), (-2 * x,)),
        Gate("RZ", (1,), (-2 * z,)),
        Gate("CNOT", (0, 1)),
    ]


def _core_unitary(gates: list[Gate]) -> np.ndarray:
    circuit = Circuit(2, list(gates))
    return circuit.unitary()


def decompose_to_cnots(unitary: np.ndarray) -> tuple[Circuit, complex]:
    """Exact CNOT-basis circuit for a 4x4 unitary.

    Returns ``(circuit, phase)`` with ``circuit.unitary() * phase == unitary``.
    The circuit acts on qubits ``(0, 1)`` and contains ``cnot_count`` CNOT /
    CZ entangling gates (CZ appears only inside the 3-CNOT core and is
    converted by the gate-set layer when the hardware lacks it; for CNOT
    hardware the CZ collapses into H-conjugated CNOTs without changing the
    two-qubit count).
    """
    target = kak_decompose(unitary)
    count = cnot_count(target.coordinates)
    core_gates = _core_gates(target.x, target.y, target.z, count)
    circuit = Circuit(2)
    if count == 0:
        _append_local(circuit, 0, target.a1 @ target.b1)
        _append_local(circuit, 1, target.a2 @ target.b2)
        return circuit, target.phase

    core = kak_decompose(_core_unitary(core_gates))
    if np.abs(np.array(core.coordinates) - np.array(target.coordinates)).max() > 1e-6:
        raise RuntimeError(
            f"core class {core.coordinates} does not match target "
            f"{target.coordinates}"
        )
    # target = phase_t (A (x) A') CAN (B (x) B')
    # core   = phase_c (C (x) C') CAN (D (x) D')
    # =>  target = (phase_t / phase_c) (A C^-1 (x) A' C'^-1) core (D^-1 B (x) D'^-1 B')
    pre1 = core.b1.conj().T @ target.b1
    pre2 = core.b2.conj().T @ target.b2
    post1 = target.a1 @ core.a1.conj().T
    post2 = target.a2 @ core.a2.conj().T
    phase = target.phase / core.phase

    _append_local(circuit, 0, pre1)
    _append_local(circuit, 1, pre2)
    circuit.extend(core_gates)
    _append_local(circuit, 0, post1)
    _append_local(circuit, 1, post2)
    return circuit, phase


def _append_local(circuit: Circuit, qubit: int, matrix: np.ndarray,
                  atol: float = 1e-9) -> None:
    """Append a single-qubit unitary unless it is just a global phase.

    The dropped phase is irrelevant here because callers track the overall
    phase via the KAK phases.
    """
    off = abs(matrix[0, 1]) + abs(matrix[1, 0])
    if off < atol and abs(matrix[0, 0] - matrix[1, 1]) < atol:
        return
    circuit.append(Gate("U1Q", (qubit,), matrix=matrix))


# ---------------------------------------------------------------------------
# Batched CNOT-basis synthesis
# ---------------------------------------------------------------------------
# The per-matrix cost of `decompose_to_cnots` is dominated by the two KAK
# decompositions (target and core) and the dense core-unitary fold; all
# three batch.  The core circuits have fixed gate *structure* per CNOT
# count, so their unitary folds split into constant segments (computed
# once through the scalar `_expand`/matmul chain) and per-matrix rotation
# layers (stacked matmuls).  A byte-level guard compares one batched core
# against the scalar `_core_unitary` fold and drops the whole group back
# to the scalar fold if the platform ever disagrees.

_CORE1_CACHE: dict[str, object] = {}


def _core1_kak():
    """KAK of the constant 1-CNOT core (deterministic; computed once)."""
    kak = _CORE1_CACHE.get("kak")
    if kak is None:
        kak = kak_decompose(_core_unitary(_core_gates(0.0, 0.0, 0.0, 1)))
        _CORE1_CACHE["kak"] = kak
    return kak


def _expand_gate(gate: Gate) -> np.ndarray:
    from repro.quantum.circuit import _expand

    return _expand(gate, 2)


_CONST_CACHE: dict[str, np.ndarray] = {}


def _const_mats() -> dict[str, np.ndarray]:
    """Constant expanded gates / folded prefixes of the core circuits.

    Every entry reproduces the exact scalar arithmetic
    (``_expand(gate, 2) @ running`` starting from ``np.eye(4)``), so
    substituting them for the scalar fold is byte-exact by construction.
    """
    if not _CONST_CACHE:
        eye = np.eye(4, dtype=complex)
        cnot = _expand_gate(Gate("CNOT", (0, 1)))
        cz = _expand_gate(Gate("CZ", (0, 1)))
        _CONST_CACHE["cnot"] = cnot
        _CONST_CACHE["cz"] = cz
        # count == 2 prefix: CNOT applied to the identity.
        _CONST_CACHE["pre2"] = cnot @ eye
        # count == 3 prefix: RZ(1,-pi/2), CNOT, RZ(0,pi/2), RZ(1,pi/2).
        run = eye
        for gate in _core_gates(0.25, 0.25, 0.125, 3)[:4]:
            run = _expand_gate(gate) @ run
        _CONST_CACHE["pre3"] = run
    return _CONST_CACHE


def _batch_cores_2(gate_lists: list[list[Gate]]) -> np.ndarray:
    """Stacked core unitaries for the 2-CNOT template."""
    consts = _const_mats()
    rx = batch_rx_matrices(
        np.array([gates[1].params[0] for gates in gate_lists], dtype=float)
    )
    rz = batch_rz_matrices(
        np.array([gates[2].params[0] for gates in gate_lists], dtype=float)
    )
    run = np.matmul(batch_expand_1q(rx, 0), consts["pre2"])
    run = np.matmul(batch_expand_1q(rz, 1), run)
    return np.matmul(consts["cnot"], run)


def _batch_cores_3(gate_lists: list[list[Gate]]) -> np.ndarray:
    """Stacked core unitaries for the 3-CNOT template."""
    consts = _const_mats()
    rx_a = batch_rx_matrices(
        np.array([gates[4].params[0] for gates in gate_lists], dtype=float)
    )
    rx_b = batch_rx_matrices(
        np.array([gates[6].params[0] for gates in gate_lists], dtype=float)
    )
    rz = batch_rz_matrices(
        np.array([gates[7].params[0] for gates in gate_lists], dtype=float)
    )
    run = np.matmul(batch_expand_1q(rx_a, 0), consts["pre3"])
    run = np.matmul(consts["cz"], run)
    run = np.matmul(batch_expand_1q(rx_b, 0), run)
    run = np.matmul(batch_expand_1q(rz, 1), run)
    return np.matmul(consts["cnot"], run)


def _guarded_cores(gate_lists: list[list[Gate]], builder) -> np.ndarray:
    """Batched core unitaries with a scalar byte-identity spot check.

    One batched core is refolded through the scalar path; any byte
    difference retires the whole group to the scalar fold (the
    ``engine="auto"`` safety treatment).
    """
    cores = builder(gate_lists)
    reference = _core_unitary(gate_lists[0])
    if reference.tobytes() != np.ascontiguousarray(cores[0]).tobytes():
        return np.stack([_core_unitary(gates) for gates in gate_lists])
    return cores


def batch_decompose_to_cnots(unitaries) -> list[tuple[Circuit, complex]]:
    """Batched :func:`decompose_to_cnots`: one entry per stacked matrix.

    Per matrix bit-identical to the scalar function -- the target and
    core KAK decompositions run through the batch engine (with its scalar
    fallback), the core folds run as stacked matmuls guarded against the
    scalar fold, and the final local-gate assembly replays the scalar
    Python verbatim.
    """
    stack = _as_batch(unitaries)
    k = stack.shape[0]
    if k == 0:
        return []
    targets = batch_kak_decompose(stack)
    counts = [cnot_count(t.coordinates) for t in targets]
    gate_lists = [
        _core_gates(t.x, t.y, t.z, n) for t, n in zip(targets, counts)
    ]

    # Core KAKs: constant for 1-CNOT cores; batched folds otherwise.
    cores = {}
    for count, builder in ((2, _batch_cores_2), (3, _batch_cores_3)):
        group = [i for i in range(k) if counts[i] == count]
        if not group:
            continue
        mats = _guarded_cores([gate_lists[i] for i in group], builder)
        for i, decomp in zip(group, batch_kak_decompose(mats)):
            cores[i] = decomp
    for i in range(k):
        if counts[i] == 1:
            cores[i] = _core1_kak()

    results: list[tuple[Circuit, complex]] = []
    for i in range(k):
        target = targets[i]
        circuit = Circuit(2)
        if counts[i] == 0:
            _append_local(circuit, 0, target.a1 @ target.b1)
            _append_local(circuit, 1, target.a2 @ target.b2)
            results.append((circuit, target.phase))
            continue
        core = cores[i]
        if np.abs(
            np.array(core.coordinates) - np.array(target.coordinates)
        ).max() > 1e-6:
            raise RuntimeError(
                f"core class {core.coordinates} does not match target "
                f"{target.coordinates}"
            )
        pre1 = core.b1.conj().T @ target.b1
        pre2 = core.b2.conj().T @ target.b2
        post1 = target.a1 @ core.a1.conj().T
        post2 = target.a2 @ core.a2.conj().T
        phase = target.phase / core.phase
        _append_local(circuit, 0, pre1)
        _append_local(circuit, 1, pre2)
        circuit.extend(gate_lists[i])
        _append_local(circuit, 0, post1)
        _append_local(circuit, 1, post2)
        results.append((circuit, phase))
    return results


def decompose_kak_aligned(unitary: np.ndarray, core_gates: list[Gate],
                          tol: float = 1e-6) -> tuple[Circuit, complex]:
    """Align an arbitrary core circuit (same Weyl class) to a target.

    Generic version of the alignment step used by the numerical gate-set
    decomposers: given any two-qubit ``core_gates`` whose product has the
    same canonical class as ``unitary`` (within ``tol``), build the full
    circuit by adding the correcting local gates.
    """
    target = kak_decompose(unitary)
    core = kak_decompose(_core_unitary(core_gates))
    if np.abs(np.array(core.coordinates) - np.array(target.coordinates)).max() > tol:
        # At the x = pi/4 chamber boundary the representatives (x, y, z)
        # and (pi/2 - x, y, -z) denote the same class; retry mirrored.
        mirrored = mirror_x_z(core)
        if np.abs(
            np.array(mirrored.coordinates) - np.array(target.coordinates)
        ).max() > tol:
            raise RuntimeError("core and target are not locally equivalent")
        core = mirrored
    circuit = Circuit(2)
    _append_local(circuit, 0, core.b1.conj().T @ target.b1)
    _append_local(circuit, 1, core.b2.conj().T @ target.b2)
    circuit.extend(core_gates)
    _append_local(circuit, 0, target.a1 @ core.a1.conj().T)
    _append_local(circuit, 1, target.a2 @ core.a2.conj().T)
    return circuit, target.phase / core.phase
