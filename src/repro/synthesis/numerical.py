"""Numerical two-qubit synthesis for non-CNOT hardware bases (SYC, iSWAP).

This mirrors the approach the paper takes for Sycamore and Aspen: gate
decomposition for bases without textbook analytic forms is done
numerically (their reference [47]).  Given a hardware basis gate ``B`` and
target class coordinates, we search over the interleaving single-qubit
layers of the sandwich ::

    core(k) = B (L_{k-1}) B ... (L_1) B

so that the sandwich reaches the target's local-equivalence class; outer
locals are then fixed exactly by KAK alignment
(:func:`repro.synthesis.cnot_basis.decompose_kak_aligned`).

The class-matching loss uses the Makhlin invariants, which are smooth in
the circuit parameters (unlike folded Weyl coordinates), so a local
optimiser converges quickly; a handful of random restarts makes it
reliable.  Calibrated minimal counts (verified numerically, see
``tests/synthesis``): both iSWAP and SYC reach every ``z = 0`` class with
two applications and every class with three.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from repro.quantum.gates import Gate
from repro.synthesis.weyl import MAGIC

_PI4 = math.pi / 4


def makhlin_invariants(unitary: np.ndarray) -> tuple[complex, float]:
    """The Makhlin local invariants ``(g1, g2)`` of a two-qubit gate."""
    det = np.linalg.det(unitary)
    special = unitary / det ** 0.25
    m = MAGIC.conj().T @ special @ MAGIC
    w = m.T @ m
    tr = np.trace(w)
    g1 = tr**2 / 16
    g2 = float(((tr**2 - np.trace(w @ w)) / 4).real)
    return g1, g2


def invariant_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Smooth squared distance between the local classes of two gates."""
    g1a, g2a = makhlin_invariants(a)
    g1b, g2b = makhlin_invariants(b)
    return abs(g1a - g1b) ** 2 + (g2a - g2b) ** 2


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def _sandwich(basis: np.ndarray, count: int, params: np.ndarray) -> np.ndarray:
    result = basis.copy()
    for i in range(count - 1):
        block = params[6 * i : 6 * i + 6]
        local = np.kron(_u3(*block[:3]), _u3(*block[3:]))
        result = basis @ local @ result
    return result


@dataclass
class SandwichSolution:
    """A solved sandwich: ``count`` basis gates + middle local layers."""

    count: int
    params: np.ndarray

    def gates(self, basis_name: str, basis: np.ndarray) -> list[Gate]:
        """Core gate list on qubits (0, 1), in application order."""
        gates: list[Gate] = [Gate(basis_name, (0, 1), matrix=basis)]
        for i in range(self.count - 1):
            block = self.params[6 * i : 6 * i + 6]
            gates.append(Gate("U1Q", (0,), matrix=_u3(*block[:3])))
            gates.append(Gate("U1Q", (1,), matrix=_u3(*block[3:])))
            gates.append(Gate(basis_name, (0, 1), matrix=basis))
        return gates


def solve_sandwich(basis: np.ndarray, count: int, target: np.ndarray,
                   seed: int = 0, restarts: int = 12,
                   tol: float = 1e-10) -> SandwichSolution | None:
    """Find middle locals so the sandwich matches the target's class."""
    if count == 0:
        ok = invariant_distance(np.eye(4, dtype=complex), target) < tol
        return SandwichSolution(0, np.zeros(0)) if ok else None
    if count == 1:
        ok = invariant_distance(basis, target) < tol
        return SandwichSolution(1, np.zeros(0)) if ok else None
    rng = np.random.default_rng(seed)
    n_params = 6 * (count - 1)

    def loss(p: np.ndarray) -> float:
        return invariant_distance(_sandwich(basis, count, p), target)

    best_val, best_p = np.inf, None
    for _ in range(restarts):
        p0 = rng.uniform(0, 2 * math.pi, n_params)
        res = minimize(loss, p0, method="L-BFGS-B",
                       options={"maxiter": 600, "ftol": 1e-18, "gtol": 1e-14})
        if res.fun < best_val:
            best_val, best_p = res.fun, res.x
        if best_val < 1e-16:
            break
    if best_val < tol and best_p is not None:
        return SandwichSolution(count, best_p)
    return None


def min_basis_gates(coords: tuple[float, float, float], basis_coords:
                    tuple[float, float, float], tol: float = 1e-7) -> int:
    """Minimal applications of a supercontrolled-type basis gate.

    Calibrated numerically for iSWAP ``(pi/4, pi/4, 0)`` and SYC
    ``(pi/4, pi/4, pi/24)``: one application only for the basis's own
    class, two for any ``z = 0`` class, three otherwise.
    """
    x, y, z = coords
    if max(abs(x), abs(y), abs(z)) < tol:
        return 0
    if max(abs(x - basis_coords[0]), abs(y - basis_coords[1]),
           abs(z - basis_coords[2])) < tol:
        return 1
    if abs(z) < tol:
        return 2
    return 3
