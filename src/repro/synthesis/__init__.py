"""Two-qubit gate synthesis: KAK/Weyl decomposition and basis retargeting.

Public entry points:

* :func:`repro.synthesis.weyl.kak_decompose` / ``weyl_coordinates`` --
  canonical Cartan decomposition of any two-qubit unitary.
* :func:`repro.synthesis.cnot_basis.decompose_to_cnots` -- exact analytic
  synthesis into at most 3 CNOTs.
* :class:`repro.synthesis.gateset.GateSet` / :func:`get_gateset` --
  retargetable decomposition into CNOT, CZ, SYC or iSWAP hardware bases.
"""

from repro.synthesis.weyl import (
    KAKDecomposition,
    canonical_gate,
    kak_decompose,
    weyl_coordinates,
)
from repro.synthesis.one_qubit import zyz_angles, zyz_matrix
from repro.synthesis.cnot_basis import cnot_count, decompose_to_cnots
from repro.synthesis.numerical import makhlin_invariants, min_basis_gates
from repro.synthesis.gateset import GATESETS, GateSet, get_gateset

__all__ = [
    "KAKDecomposition",
    "canonical_gate",
    "kak_decompose",
    "weyl_coordinates",
    "zyz_angles",
    "zyz_matrix",
    "cnot_count",
    "decompose_to_cnots",
    "makhlin_invariants",
    "min_basis_gates",
    "GATESETS",
    "GateSet",
    "get_gateset",
]
