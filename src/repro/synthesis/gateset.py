"""Hardware gate sets and the retargetable decomposition entry point.

2QAN performs all permutation-aware passes on application-level SU(4)
blocks and only afterwards decomposes into the hardware basis.  This
module provides that final pass for the four bases the paper evaluates:

* ``CNOT``  -- IBMQ Montreal (analytic, exact),
* ``CZ``    -- Sycamore/Aspen alternative basis (analytic, exact),
* ``SYC``   -- Google Sycamore (numerical sandwich + KAK alignment),
* ``ISWAP`` -- Rigetti Aspen (numerical sandwich + KAK alignment).

Two modes:

* ``solve=True`` produces unitary-exact circuits (used in tests/examples).
* ``solve=False`` produces a structurally identical circuit with
  placeholder single-qubit gates -- same two-qubit count and depth, much
  faster.  The benchmark harness uses this mode, mirroring how the paper
  reports gate counts and depths rather than full unitaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.quantum.circuit import Circuit
from repro.quantum.gates import Gate, standard_gate_unitary
from repro.quantum.transforms import merge_single_qubit_gates
from repro.synthesis.batch import batch_weyl_coordinates
from repro.synthesis.cnot_basis import (
    batch_decompose_to_cnots,
    cnot_count,
    decompose_kak_aligned,
    decompose_to_cnots,
)
from repro.synthesis.numerical import min_basis_gates, solve_sandwich
from repro.synthesis.weyl import weyl_coordinates

_H = standard_gate_unitary("H")


@dataclass(frozen=True)
class GateSet:
    """A hardware two-qubit basis."""

    name: str
    basis_coords: tuple[float, float, float]

    def basis_matrix(self) -> np.ndarray:
        return standard_gate_unitary(self.name)

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    def gates_needed(self, unitary: np.ndarray) -> int:
        """Minimal number of basis two-qubit gates for this unitary."""
        coords = weyl_coordinates(unitary)
        if self.name in ("CNOT", "CZ"):
            return cnot_count(coords)
        return min_basis_gates(coords, self.basis_coords)

    # ------------------------------------------------------------------
    # decomposition
    # ------------------------------------------------------------------
    def decompose(self, unitary: np.ndarray, *, solve: bool = True,
                  seed: int = 0) -> tuple[Circuit, complex]:
        """Two-qubit circuit (on qubits 0, 1) implementing ``unitary``.

        Returns ``(circuit, phase)``; when ``solve`` is true,
        ``phase * circuit.unitary() == unitary`` to numerical precision.
        With ``solve=False``, only the structure (basis-gate count, depth
        shape) is guaranteed.
        """
        if self.name == "CNOT":
            circuit, phase = decompose_to_cnots(unitary)
            return merge_single_qubit_gates(_rewrite_cz_as_cnot(circuit)), phase
        if self.name == "CZ":
            circuit, phase = decompose_to_cnots(unitary)
            return merge_single_qubit_gates(_rewrite_cnot_as_cz(circuit)), phase
        return self._decompose_numerical(unitary, solve=solve, seed=seed)

    def decompose_batch(self, unitaries, *, solve: bool = True,
                        seed: int = 0) -> list[tuple[Circuit, complex]]:
        """Batched :meth:`decompose`: one ``(circuit, phase)`` per input.

        Per matrix bit-identical to the scalar method.  The analytic
        CNOT/CZ bases and the structural (``solve=False``) numerical
        path ride the batched KAK engine; the exact numerical path is
        solver-bound (scipy sandwich search per matrix) and runs the
        scalar method per input.
        """
        if self.name in ("CNOT", "CZ"):
            rewrite = (_rewrite_cz_as_cnot if self.name == "CNOT"
                       else _rewrite_cnot_as_cz)
            return [
                (merge_single_qubit_gates(rewrite(circuit)), phase)
                for circuit, phase in batch_decompose_to_cnots(unitaries)
            ]
        if not solve:
            counts = [
                min_basis_gates(coords, self.basis_coords)
                for coords in batch_weyl_coordinates(unitaries)
            ]
            return [
                (_structural_circuit(self.name, count), 1.0 + 0j)
                for count in counts
            ]
        return [
            self._decompose_numerical(unitary, solve=True, seed=seed)
            for unitary in unitaries
        ]

    def _decompose_numerical(self, unitary: np.ndarray, *, solve: bool,
                             seed: int) -> tuple[Circuit, complex]:
        count = self.gates_needed(unitary)
        basis = self.basis_matrix()
        if not solve:
            return _structural_circuit(self.name, count), 1.0 + 0j
        # Near Weyl-chamber boundaries the Makhlin invariants flatten, so
        # the sandwich class can be off by ~1e-3 in coordinates even at
        # loss ~1e-14; the alignment tolerance is therefore loose and the
        # final polish (plus a verified retry loop) restores precision.
        last_error = None
        for attempt in range(3):
            attempt_seed = seed + 1013 * attempt
            try:
                core_gates = self._core_gates(basis, count, unitary,
                                              attempt_seed)
                circuit, phase = decompose_kak_aligned(
                    unitary, core_gates, tol=2e-2
                )
                circuit = merge_single_qubit_gates(circuit)
                circuit, phase = _polish(circuit, unitary)
                error = np.abs(phase * circuit.unitary() - unitary).max()
                if error < 5e-6:
                    return circuit, phase
                last_error = RuntimeError(
                    f"polish stalled at error {error:.1e}"
                )
            except RuntimeError as exc:
                last_error = exc
        raise RuntimeError(
            f"numerical decomposition into {self.name} failed: {last_error}"
        )

    def _core_gates(self, basis: np.ndarray, count: int,
                    unitary: np.ndarray, seed: int) -> list[Gate]:
        if count == 0:
            return []
        if count == 1:
            return [Gate(self.name, (0, 1))]
        solution = solve_sandwich(basis, count, unitary, seed=seed)
        if solution is None:
            # One extra application always suffices (calibrated).
            solution = solve_sandwich(basis, count + 1, unitary, seed=seed,
                                      restarts=24)
        if solution is None:
            raise RuntimeError("sandwich solver found no solution")
        return solution.gates(self.name, basis)


def _polish(circuit: Circuit, target: np.ndarray) -> tuple[Circuit, complex]:
    """Refine every single-qubit gate to match the target unitary exactly.

    Starts from an already-close circuit (the KAK-aligned sandwich) and
    minimises the true gate infidelity ``1 - |tr(V^dag U)| / 4``, which is
    smooth, so convergence to machine precision takes a few iterations.
    """
    from scipy.optimize import minimize

    from repro.synthesis.one_qubit import zyz_angles, zyz_matrix

    slots = [i for i, g in enumerate(circuit.gates) if g.n_qubits == 1]
    if not slots:
        phase = _relative_phase(circuit.unitary(), target)
        return circuit, phase
    x0 = []
    for i in slots:
        _, phi, theta, lam = zyz_angles(circuit.gates[i].unitary())
        x0.extend((phi, theta, lam))

    def build(params: np.ndarray) -> Circuit:
        rebuilt = circuit.copy()
        for slot_idx, i in enumerate(slots):
            phi, theta, lam = params[3 * slot_idx : 3 * slot_idx + 3]
            matrix = zyz_matrix(0.0, phi, theta, lam)
            rebuilt.gates[i] = Gate("U1Q", circuit.gates[i].qubits, matrix=matrix)
        return rebuilt

    def loss(params: np.ndarray) -> float:
        v = build(params).unitary()
        return 1.0 - abs(np.trace(target.conj().T @ v)) / 4.0

    result = minimize(loss, np.array(x0), method="L-BFGS-B",
                      options={"maxiter": 400, "ftol": 1e-18, "gtol": 1e-15})
    # Second pass from the optimum with a smaller finite-difference step
    # typically gains one or two digits.
    result = minimize(loss, result.x, method="L-BFGS-B",
                      options={"maxiter": 200, "ftol": 1e-20,
                               "gtol": 1e-16, "eps": 1e-9})
    polished = build(result.x)
    phase = _relative_phase(polished.unitary(), target)
    return polished, phase


def _relative_phase(actual: np.ndarray, target: np.ndarray) -> complex:
    """Phase ``p`` minimising ``|p * actual - target|``."""
    tr = np.trace(actual.conj().T @ target)
    if abs(tr) < 1e-12:
        return 1.0 + 0j
    return tr / abs(tr)


def _structural_circuit(basis_name: str, count: int) -> Circuit:
    """Placeholder circuit with the right structure for metrics."""
    circuit = Circuit(2)
    circuit.append(Gate("U1Q", (0,), matrix=np.eye(2, dtype=complex)))
    circuit.append(Gate("U1Q", (1,), matrix=np.eye(2, dtype=complex)))
    for _ in range(count):
        circuit.append(Gate(basis_name, (0, 1)))
        circuit.append(Gate("U1Q", (0,), matrix=np.eye(2, dtype=complex)))
        circuit.append(Gate("U1Q", (1,), matrix=np.eye(2, dtype=complex)))
    return circuit


def _rewrite_cz_as_cnot(circuit: Circuit) -> Circuit:
    """Replace CZ gates by H-conjugated CNOTs (entangling count unchanged)."""
    rewritten = Circuit(circuit.n_qubits)
    for gate in circuit:
        if gate.name == "CZ":
            a, b = gate.qubits
            rewritten.append(Gate("H", (b,)))
            rewritten.append(Gate("CNOT", (a, b)))
            rewritten.append(Gate("H", (b,)))
        else:
            rewritten.append(gate)
    return rewritten


def _rewrite_cnot_as_cz(circuit: Circuit) -> Circuit:
    """Replace CNOT gates by H-conjugated CZs (entangling count unchanged)."""
    rewritten = Circuit(circuit.n_qubits)
    for gate in circuit:
        if gate.name == "CNOT":
            a, b = gate.qubits
            rewritten.append(Gate("H", (b,)))
            rewritten.append(Gate("CZ", (a, b)))
            rewritten.append(Gate("H", (b,)))
        else:
            rewritten.append(gate)
    return rewritten


_SYC_COORDS = (math.pi / 4, math.pi / 4, math.pi / 24)
_ISWAP_COORDS = (math.pi / 4, math.pi / 4, 0.0)
_CNOT_COORDS = (math.pi / 4, 0.0, 0.0)

GATESETS: dict[str, GateSet] = {
    "CNOT": GateSet("CNOT", _CNOT_COORDS),
    "CZ": GateSet("CZ", _CNOT_COORDS),
    "SYC": GateSet("SYC", _SYC_COORDS),
    "ISWAP": GateSet("ISWAP", _ISWAP_COORDS),
}


def get_gateset(name: str) -> GateSet:
    """Look up a gate set by (case-insensitive) name."""
    try:
        return GATESETS[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown gate set {name!r}; available: {sorted(GATESETS)}"
        ) from None
