"""Decomposition perf smoke: batched KAK synthesis vs the scalar path.

Run as ``python -m repro.synthesis.perf_smoke``.  Builds a fixed batch of
two-qubit unitaries (seeded Haar draws plus the structured blocks real
workloads repeat: SWAP, CNOT, CZ, canonical gates at the chamber
boundaries), lowers it to the CNOT basis both ways -- one
:meth:`GateSet.decompose_batch` call against per-matrix
:meth:`GateSet.decompose` -- and asserts the batched engine is at least
``MIN_RATIO`` times faster.  The check is *relative* (both sides run in
the same process on the same machine), so it is robust to slow CI
runners; it also re-asserts block-for-block bit-identity, because a fast
wrong synthesis is worse than a slow right one.
"""

from __future__ import annotations

import math
import sys
import time

import numpy as np

MIN_RATIO = 3.0
N_HAAR = 48
ROUNDS = 5


def build_workload() -> list[np.ndarray]:
    """The fixed smoke batch: Haar draws plus structured repeats."""
    from repro.quantum.gates import standard_gate_unitary
    from repro.quantum.unitaries import random_unitary
    from repro.synthesis.weyl import canonical_gate

    rng = np.random.default_rng(0)
    matrices = [random_unitary(4, rng) for _ in range(N_HAAR)]
    matrices += [
        standard_gate_unitary("SWAP"),
        standard_gate_unitary("CNOT"),
        standard_gate_unitary("CZ"),
        np.kron(random_unitary(2, rng), random_unitary(2, rng)),
        canonical_gate(math.pi / 4, 0.3, 0.1),   # x = pi/4 boundary
        canonical_gate(0.4, 0.3, 0.0),           # z = 0 (2-CNOT class)
        canonical_gate(0.4, 0.3, -0.2),          # z < 0 pre-reduction
    ]
    return matrices


def blocks_identical(batched, scalar) -> bool:
    """Block-for-block comparison: names, qubits, params, matrix bytes,
    global phases."""
    if len(batched) != len(scalar):
        return False
    for (circuit_b, phase_b), (circuit_s, phase_s) in zip(batched, scalar):
        if complex(phase_b) != complex(phase_s):
            return False
        if len(circuit_b.gates) != len(circuit_s.gates):
            return False
        for gate_b, gate_s in zip(circuit_b.gates, circuit_s.gates):
            if (gate_b.name != gate_s.name
                    or gate_b.qubits != gate_s.qubits
                    or gate_b.params != gate_s.params):
                return False
            if (gate_b.matrix is None) != (gate_s.matrix is None):
                return False
            if gate_b.matrix is not None:
                if (np.ascontiguousarray(gate_b.matrix).tobytes()
                        != np.ascontiguousarray(gate_s.matrix).tobytes()):
                    return False
    return True


def measure(rounds: int = ROUNDS) -> tuple[float, float, bool]:
    """(batched seconds, scalar seconds, blocks identical) for one pass
    over the fixed workload, best of ``rounds``."""
    from repro.synthesis.gateset import get_gateset

    gateset = get_gateset("CNOT")
    matrices = build_workload()

    def batched():
        return gateset.decompose_batch(matrices)

    def scalar():
        return [gateset.decompose(matrix) for matrix in matrices]

    batched()  # warm constant caches on both sides before timing
    scalar()
    batched_s = min(_timed(batched) for _ in range(rounds))
    scalar_s = min(_timed(scalar) for _ in range(rounds))
    identical = blocks_identical(batched(), scalar())
    return batched_s, scalar_s, identical


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def main() -> int:
    batched_s, scalar_s, identical = measure()
    ratio = scalar_s / batched_s if batched_s > 0 else float("inf")
    print(f"decompose perf smoke ({N_HAAR + 7} blocks, CNOT basis): "
          f"batched {batched_s * 1e3:.1f}ms, "
          f"scalar reference {scalar_s * 1e3:.1f}ms, "
          f"ratio {ratio:.1f}x (need >= {MIN_RATIO}x), "
          f"block-identical: {identical}")
    if not identical:
        print("FAIL: batched blocks differ from the scalar reference")
        return 1
    if ratio < MIN_RATIO:
        print(f"FAIL: batched synthesis only {ratio:.1f}x faster")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
