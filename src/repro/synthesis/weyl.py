"""KAK (Cartan) decomposition of two-qubit unitaries.

Any ``U`` in U(4) factors as ::

    U = phase * (A1 (x) A2) * CAN(x, y, z) * (B1 (x) B2)

where ``CAN(x, y, z) = exp(i (x XX + y YY + z ZZ))`` and ``A*, B*`` are
single-qubit unitaries.  The triple ``(x, y, z)``, reduced to the Weyl
chamber ``pi/4 >= x >= y >= |z|`` (with ``z >= 0`` when ``x = pi/4``),
is a complete invariant of ``U`` under local (single-qubit) operations.

2QAN uses this machinery to (a) count how many hardware two-qubit gates a
unified/dressed gate needs on each device and (b) synthesise the explicit
circuits.  The implementation follows the standard magic-basis algorithm:
in the magic basis local gates become real orthogonal matrices and the
canonical part becomes diagonal, so a simultaneous diagonalisation of the
real and imaginary parts of ``V^T V`` (``V`` the magic-basis image of
``U``) produces the factorisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.quantum.unitaries import closest_kron_factors

# The magic (Bell-like) basis.  Columns are maximally entangled states.
MAGIC = np.array(
    [
        [1, 0, 0, 1j],
        [0, 1j, 1, 0],
        [0, 1j, -1, 0],
        [1, 0, 0, -1j],
    ],
    dtype=complex,
) / math.sqrt(2)

_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.diag([1, -1]).astype(complex)
_I = np.eye(2, dtype=complex)
_XX = np.kron(_X, _X)
_YY = np.kron(_Y, _Y)
_ZZ = np.kron(_Z, _Z)
_S = np.diag([1, 1j]).astype(complex)


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def canonical_gate(x: float, y: float, z: float) -> np.ndarray:
    """The canonical gate ``CAN(x,y,z) = exp(i(x XX + y YY + z ZZ))``.

    All three generators commute, so the exponential splits into a product
    of three single-axis exponentials, each computed in closed form.
    """
    result = np.eye(4, dtype=complex)
    for coeff, pauli in ((x, _XX), (y, _YY), (z, _ZZ)):
        result = (math.cos(coeff) * np.eye(4) + 1j * math.sin(coeff) * pauli) @ result
    return result


class KAKError(RuntimeError):
    """Raised when the KAK decomposition fails numerically."""


def _simultaneous_diagonalize(w: np.ndarray, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Diagonalise a unitary symmetric matrix ``w = P diag(d) P^T``.

    ``P`` is real orthogonal.  Works by simultaneously diagonalising the
    commuting real symmetric matrices ``Re(w)`` and ``Im(w)`` using a
    random linear combination (a generic combination separates all joint
    eigenspaces with probability one).
    """
    a, b = w.real, w.imag
    rng = np.random.default_rng(seed)
    for _ in range(40):
        t = rng.normal()
        _, p = np.linalg.eigh(a + t * b)
        da = p.T @ a @ p
        db = p.T @ b @ p
        off = max(
            np.abs(da - np.diag(np.diag(da))).max(),
            np.abs(db - np.diag(np.diag(db))).max(),
        )
        if off < 1e-10:
            return p, np.diag(da) + 1j * np.diag(db)
    raise KAKError("simultaneous diagonalization did not converge")


@dataclass
class KAKDecomposition:
    """Result of :func:`kak_decompose`.

    ``unitary = phase * kron(a1, a2) @ canonical_gate(x, y, z) @ kron(b1, b2)``
    """

    phase: complex
    a1: np.ndarray
    a2: np.ndarray
    x: float
    y: float
    z: float
    b1: np.ndarray
    b2: np.ndarray

    @property
    def coordinates(self) -> tuple[float, float, float]:
        return (self.x, self.y, self.z)

    def reconstruct(self) -> np.ndarray:
        left = np.kron(self.a1, self.a2)
        right = np.kron(self.b1, self.b2)
        return self.phase * left @ canonical_gate(self.x, self.y, self.z) @ right


def mirror_x_z(d: KAKDecomposition) -> KAKDecomposition:
    """Transform a decomposition to coordinates ``(pi/2 - x, y, -z)``.

    Uses the local identities ``CAN(-x,y,-z) = (Y(x)I) CAN(x,y,z) (Y(x)I)``
    and ``CAN(c) = -i XX CAN(c + pi/2 e_x)``.  Needed at the ``x = pi/4``
    chamber boundary where ``(pi/4, y, z)`` and ``(pi/4, y, -z)`` denote
    the same class but numerical canonicalization may pick either.
    """
    a1 = d.a1 @ _Y @ _X
    a2 = d.a2 @ _X
    b1 = _Y @ d.b1
    b2 = d.b2.copy()
    return KAKDecomposition(
        phase=d.phase * (-1j),
        a1=a1, a2=a2,
        x=math.pi / 2 - d.x, y=d.y, z=-d.z,
        b1=b1, b2=b2,
    )


def _kak_raw(unitary: np.ndarray) -> tuple[complex, np.ndarray, np.ndarray, np.ndarray]:
    """Non-canonical KAK: returns ``(phase, K1, theta, K2)``.

    ``K1``/``K2`` are 4x4 matrices that are exact tensor products of SU(2)
    factors; ``theta`` is the coordinate vector (x, y, z), not yet reduced
    to the Weyl chamber.
    """
    det = np.linalg.det(unitary)
    phase = det ** 0.25
    special = unitary / phase
    v = MAGIC.conj().T @ special @ MAGIC
    w = v.T @ v
    p, d = _simultaneous_diagonalize(w)
    if np.linalg.det(p) < 0:
        p = p.copy()
        p[:, 0] *= -1
    theta = np.angle(d) / 2
    # Branch parity: sum(theta) must be 0 mod 2*pi so that the left factor
    # lands in SO(4) (det +1); det(w) = 1 guarantees the sum is 0 or pi.
    residue = float(np.mod(theta.sum(), 2 * math.pi))
    if min(residue, 2 * math.pi - residue) > 1e-6:
        if abs(residue - math.pi) > 1e-6:
            raise KAKError(f"unexpected eigenphase parity {residue}")
        theta = theta.copy()
        theta[0] -= math.pi
    k1p = (v @ p @ np.diag(np.exp(-1j * theta))).real
    if np.abs(k1p @ k1p.T - np.eye(4)).max() > 1e-7:
        raise KAKError("left orthogonal factor is not orthogonal")
    # Coordinates from the diagonal phase pattern of XX/YY/ZZ in the magic
    # basis: theta = (x-y+z, x+y-z, -x-y-z, -x+y+z).
    x = (theta[0] + theta[1]) / 2
    y = (theta[1] + theta[3]) / 2
    z = (theta[0] + theta[3]) / 2
    k1 = MAGIC @ k1p @ MAGIC.conj().T
    k2 = MAGIC @ p.T @ MAGIC.conj().T
    return phase, k1, np.array([x, y, z]), k2


# ---------------------------------------------------------------------------
# Weyl-chamber canonicalization
# ---------------------------------------------------------------------------

_TOL = 1e-9

# Move fixups, all verified identities:
#   CAN(y,x,z) = (S(x)S)   CAN(x,y,z) (S(x)S)^dag
#   CAN(x,z,y) = (Rx(pi/2)(x)Rx(pi/2)) CAN (.)^dag
#   CAN(-x,-y,z) = (Z(x)I) CAN (Z(x)I)
#   CAN(x,-y,-z) = (X(x)I) CAN (X(x)I)
#   CAN(-x,y,-z) = (Y(x)I) CAN (Y(x)I)
#   CAN(x+pi/2,y,z) = i XX CAN(x,y,z)   (and YY, ZZ analogues)

_SWAP_XY = np.kron(_S, _S)
_SWAP_YZ = np.kron(_rx(math.pi / 2), _rx(math.pi / 2))
_FLIP = {
    frozenset((0, 1)): np.kron(_Z, _I),
    frozenset((1, 2)): np.kron(_X, _I),
    frozenset((0, 2)): np.kron(_Y, _I),
}
_SHIFT = {0: _XX, 1: _YY, 2: _ZZ}

_PERM_WORDS: dict[tuple[int, int, int], list[str]] = {
    # permutation sigma as tuple: new coords c'[i] = c[sigma[i]]
    (0, 1, 2): [],
    (1, 0, 2): ["xy"],
    (0, 2, 1): ["yz"],
    (2, 0, 1): ["yz", "xy"],   # (x,y,z) -> (x,z,y) -> (z,x,y)
    (1, 2, 0): ["xy", "yz"],   # (x,y,z) -> (y,x,z) -> (y,z,x)
    (2, 1, 0): ["xy", "yz", "xy"],
}

_SIGN_PATTERNS = ((1, 1, 1), (1, -1, -1), (-1, 1, -1), (-1, -1, 1))


def _in_chamber(c: tuple[float, float, float], tol: float = _TOL) -> bool:
    x, y, z = c
    return (
        x <= math.pi / 4 + tol
        and x >= y - tol
        and y >= abs(z) - tol
        and y >= -tol
    )


def weyl_coordinates(unitary: np.ndarray) -> tuple[float, float, float]:
    """Canonical Weyl-chamber coordinates (the local-equivalence class)."""
    _, _, theta, _ = _kak_raw(unitary)
    best = _best_candidate(theta)[0]
    return best


def _best_candidate(theta: np.ndarray):
    """Enumerate the move orbit of the raw coordinates and pick the
    canonical representative plus the move recipe producing it."""
    best_key = None
    best = None
    for sigma, word in _PERM_WORDS.items():
        permuted = np.array([theta[sigma[0]], theta[sigma[1]], theta[sigma[2]]])
        for signs in _SIGN_PATTERNS:
            flipped = permuted * np.array(signs)
            shifted = np.mod(flipped, math.pi / 2)
            for z_branch in (0, 1):
                z_val = shifted[2] - (math.pi / 2 if z_branch else 0.0)
                cand = (float(shifted[0]), float(shifted[1]), float(z_val))
                if not _in_chamber(cand):
                    continue
                key = (round(cand[0], 9), round(cand[1], 9), round(cand[2], 9))
                if best_key is None or key > best_key:
                    best_key = key
                    shifts = np.round((shifted - flipped) / (math.pi / 2)).astype(int)
                    shifts[2] -= z_branch
                    best = (cand, word, signs, tuple(int(s) for s in shifts))
    if best is None:
        raise KAKError(f"no canonical candidate found for {theta}")
    return best


def kak_decompose(unitary: np.ndarray) -> KAKDecomposition:
    """Canonical KAK decomposition with Weyl-chamber coordinates."""
    if unitary.shape != (4, 4):
        raise ValueError("kak_decompose expects a 4x4 unitary")
    phase, k1, theta, k2 = _kak_raw(unitary)
    coords, word, signs, shifts = _best_candidate(theta)

    c = np.array(theta, dtype=float)
    left, right = k1, k2
    # 1. permutation moves (each: CAN(sigma c) = G CAN(c) G^dag).
    for swap in word:
        g = _SWAP_XY if swap == "xy" else _SWAP_YZ
        if swap == "xy":
            c = np.array([c[1], c[0], c[2]])
        else:
            c = np.array([c[0], c[2], c[1]])
        left = left @ g.conj().T
        right = g @ right
    # 2. sign flips (self-inverse Pauli fixups).
    if signs != (1, 1, 1):
        flipped_axes = frozenset(i for i, s in enumerate(signs) if s < 0)
        g = _FLIP[flipped_axes]
        c = c * np.array(signs)
        left = left @ g
        right = g @ right
    # 3. shifts: CAN(c + (pi/2) e_i) = i * P_i P_i * CAN(c) with P in
    # {XX, YY, ZZ}; so adding k shifts multiplies left by the Pauli pair k
    # times and the phase by (-i)^k.
    for axis in range(3):
        k = shifts[axis]
        if k == 0:
            continue
        pauli = _SHIFT[axis]
        for _ in range(abs(k)):
            if k > 0:
                left = left @ pauli
                phase = phase * (-1j)
                c[axis] += math.pi / 2
            else:
                left = left @ pauli
                phase = phase * 1j
                c[axis] -= math.pi / 2
    if np.abs(c - np.array(coords)).max() > 1e-7:
        raise KAKError(f"canonicalization mismatch: {c} vs {coords}")

    a1, a2 = closest_kron_factors(left)
    b1, b2 = closest_kron_factors(right)
    # Fold any leftover factorisation phase into the global phase.
    err_left = np.kron(a1, a2) - left
    err_right = np.kron(b1, b2) - right
    if max(np.abs(err_left).max(), np.abs(err_right).max()) > 1e-7:
        raise KAKError("local factors are not tensor products")
    decomposition = KAKDecomposition(
        phase=complex(phase), a1=a1, a2=a2,
        x=float(coords[0]), y=float(coords[1]), z=float(coords[2]),
        b1=b1, b2=b2,
    )
    # Exactness check; callers rely on reconstruct() being tight.
    if np.abs(decomposition.reconstruct() - unitary).max() > 1e-6:
        raise KAKError("KAK reconstruction failed")
    return decomposition
