"""Single-qubit synthesis: ZYZ Euler decomposition.

Every single-qubit unitary factors as ``U = exp(i alpha) Rz(phi) Ry(theta)
Rz(lam)``.  All three NISQ devices targeted by the paper support arbitrary
single-qubit rotations, so one fused ``U3``-style gate per qubit per layer
is the right cost model; the ZYZ angles are also what a real pulse
compiler would consume.
"""

from __future__ import annotations

import cmath
import math

import numpy as np


def zyz_angles(unitary: np.ndarray) -> tuple[float, float, float, float]:
    """Return ``(alpha, phi, theta, lam)`` with
    ``unitary = exp(i alpha) Rz(phi) Ry(theta) Rz(lam)``.
    """
    if unitary.shape != (2, 2):
        raise ValueError("zyz_angles expects a 2x2 unitary")
    det = np.linalg.det(unitary)
    alpha = cmath.phase(det) / 2
    su2 = unitary * cmath.exp(-1j * alpha)
    # su2 = [[cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #        [sin(t/2) e^{ i(phi-lam)/2},  cos(t/2) e^{ i(phi+lam)/2}]]
    # atan2 is numerically stable where acos(|u00|) is not (theta ~ 0, pi).
    theta = 2 * math.atan2(abs(su2[1, 0]), abs(su2[0, 0]))
    if abs(su2[0, 0]) > 1e-12 and abs(su2[1, 0]) > 1e-12:
        plus = 2 * cmath.phase(su2[1, 1])
        minus = 2 * cmath.phase(su2[1, 0])
        phi = (plus + minus) / 2
        lam = (plus - minus) / 2
    elif abs(su2[0, 0]) > 1e-12:  # theta ~ 0: only phi+lam matters
        phi = 2 * cmath.phase(su2[1, 1])
        lam = 0.0
    else:  # theta ~ pi: only phi-lam matters
        phi = 2 * cmath.phase(su2[1, 0])
        lam = 0.0
    return alpha, phi, theta, lam


def zyz_matrix(alpha: float, phi: float, theta: float, lam: float) -> np.ndarray:
    """Rebuild the unitary from ZYZ angles (inverse of :func:`zyz_angles`)."""
    rz_phi = np.diag([cmath.exp(-0.5j * phi), cmath.exp(0.5j * phi)])
    rz_lam = np.diag([cmath.exp(-0.5j * lam), cmath.exp(0.5j * lam)])
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    ry = np.array([[c, -s], [s, c]], dtype=complex)
    return cmath.exp(1j * alpha) * rz_phi @ ry @ rz_lam


def is_identity_up_to_phase(unitary: np.ndarray, atol: float = 1e-9) -> bool:
    """True when the gate is a global phase (can be dropped entirely)."""
    off = abs(unitary[0, 1]) + abs(unitary[1, 0])
    return off < atol and abs(abs(unitary[0, 0]) - 1) < atol and (
        abs(unitary[0, 0] - unitary[1, 1]) < atol
    )
