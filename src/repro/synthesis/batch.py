"""Batched magic-basis KAK: the vectorized two-qubit synthesis engine.

The scalar KAK machinery in :mod:`repro.synthesis.weyl` decomposes one
4x4 unitary at a time; every step of it -- determinant, magic-basis
conjugation, the simultaneous diagonalisation of ``V^T V``, the Weyl
move-orbit search and the Kronecker factor SVDs -- is matrix math that
batches naturally over a stacked ``(k, 4, 4)`` array.  This module is
that batch engine: one LAPACK gufunc call per stage instead of one
Python-dispatched call per matrix.

**Bit-identity contract.**  Every function here returns, per matrix,
exactly the bytes the retained scalar reference would have produced:

* numpy's ``det``/``eigh``/``svd``/``matmul`` gufuncs apply the same
  LAPACK/BLAS routine to each stacked slice that a single 2-D call uses,
  so the stacked stages reproduce the scalar float64 operation order
  exactly;
* stages where the scalar code is irreducibly sequential (the
  canonicalization *move application*, whose fixup word differs per
  matrix) run per matrix with the same Python operations on the batched
  intermediates;
* matrices the batch stage cannot represent -- the simultaneous
  diagonalisation did not converge on the first random draw, the
  eigenphase parity is anomalous, an orthogonality/factorisation check
  trips -- fall back to the scalar path one matrix at a time, the same
  ``engine="auto"`` treatment the incremental router uses for weighted
  devices.  The scalar path then either succeeds (identically, replaying
  further random draws) or raises the exact error it always raised.

The chamber tie-break in :func:`repro.synthesis.weyl._best_candidate`
compares ``round(x, 9)`` key tuples with Python semantics; the batch
orbit search therefore vectorises the candidate *arithmetic* (48 move
candidates per matrix in one broadcast) and replays the key comparison
per matrix over the handful of in-chamber survivors, preserving the
scalar scan order bit for bit.
"""

from __future__ import annotations

import math

import numpy as np

from repro.synthesis.weyl import (
    MAGIC,
    KAKDecomposition,
    _FLIP,
    _PERM_WORDS,
    _SHIFT,
    _SIGN_PATTERNS,
    _SWAP_XY,
    _SWAP_YZ,
    _TOL,
    kak_decompose,
    weyl_coordinates,
)

_HALF_PI = math.pi / 2
_TWO_PI = 2 * math.pi

# First random mixing coefficient the scalar `_simultaneous_diagonalize`
# draws (``default_rng(seed=0).normal()``).  Almost every unitary
# converges on this draw; the rest fall back to the scalar retry loop.
_FIRST_DRAW = float(np.random.default_rng(0).normal())

_I4 = np.eye(4, dtype=complex)
_MAGIC_H = np.ascontiguousarray(MAGIC.conj().T)

# The move-orbit enumeration, frozen in the scalar iteration order.
_PERMS = np.array(list(_PERM_WORDS), dtype=np.intp)            # (6, 3)
_WORDS = list(_PERM_WORDS.values())
_SIGNS = np.array(_SIGN_PATTERNS, dtype=float)                 # (4, 3)


def _as_batch(unitaries) -> np.ndarray:
    """Validate and stack input as a C-contiguous complex (k, 4, 4)."""
    stack = np.ascontiguousarray(np.asarray(unitaries, dtype=complex))
    if stack.ndim != 3 or stack.shape[1:] != (4, 4):
        raise ValueError(
            f"batch engine expects a stacked (k, 4, 4) array, "
            f"got shape {stack.shape}"
        )
    return stack


def _slice_max_abs(arrays: np.ndarray) -> np.ndarray:
    """Per-slice ``np.abs(.).max()`` over the trailing two axes."""
    return np.abs(arrays).reshape(arrays.shape[0], -1).max(axis=1)


# ---------------------------------------------------------------------------
# Stage 1: the raw (non-canonical) KAK, batched
# ---------------------------------------------------------------------------
def batch_kak_raw(stack: np.ndarray):
    """Batched :func:`repro.synthesis.weyl._kak_raw`.

    Returns ``(phases, k1s, thetas, k2s, ok)`` where the first four are
    the stacked counterparts of the scalar return values and ``ok`` is a
    boolean mask; entries with ``ok[i] == False`` (first-draw
    non-convergence, anomalous eigenphase parity, a failed orthogonality
    check) carry no guarantee and must be recomputed through the scalar
    path.
    """
    k = stack.shape[0]
    dets = np.linalg.det(stack)
    phases = dets ** 0.25
    special = stack / phases[:, None, None]
    v = np.matmul(np.matmul(_MAGIC_H, special), MAGIC)
    w = np.matmul(v.transpose(0, 2, 1), v)

    # Simultaneous diagonalisation, first scalar draw only.
    a, b = w.real, w.imag
    _, p = np.linalg.eigh(a + _FIRST_DRAW * b)
    da = np.matmul(np.matmul(p.transpose(0, 2, 1), a), p)
    db = np.matmul(np.matmul(p.transpose(0, 2, 1), b), p)
    diag_mask = np.eye(4, dtype=bool)
    off = np.maximum(
        _slice_max_abs(np.where(diag_mask, 0.0, da)),
        _slice_max_abs(np.where(diag_mask, 0.0, db)),
    )
    ok = off < 1e-10
    d = np.einsum("kii->ki", da) + 1j * np.einsum("kii->ki", db)

    neg = np.linalg.det(p) < 0
    if neg.any():
        p = p.copy()
        p[neg, :, 0] *= -1

    theta4 = np.angle(d) / 2
    residue = np.mod(theta4.sum(axis=1), _TWO_PI)
    needs_shift = np.minimum(residue, _TWO_PI - residue) > 1e-6
    bad_parity = needs_shift & (np.abs(residue - math.pi) > 1e-6)
    ok &= ~bad_parity
    shift = needs_shift & ~bad_parity
    if shift.any():
        theta4 = theta4.copy()
        theta4[shift, 0] -= math.pi

    expd = np.zeros((k, 4, 4), dtype=complex)
    idx = np.arange(4)
    expd[:, idx, idx] = np.exp(-1j * theta4)
    k1p = np.matmul(np.matmul(v, p), expd).real
    orth = _slice_max_abs(
        np.matmul(k1p, k1p.transpose(0, 2, 1)) - np.eye(4)
    )
    ok &= orth <= 1e-7

    x = (theta4[:, 0] + theta4[:, 1]) / 2
    y = (theta4[:, 1] + theta4[:, 3]) / 2
    z = (theta4[:, 0] + theta4[:, 3]) / 2
    thetas = np.stack([x, y, z], axis=1)

    k1 = np.matmul(np.matmul(MAGIC, k1p), _MAGIC_H)
    k2 = np.matmul(np.matmul(MAGIC, p.transpose(0, 2, 1)), _MAGIC_H)
    return phases, k1, thetas, k2, ok


# ---------------------------------------------------------------------------
# Stage 2: the Weyl-chamber move orbit, batched arithmetic
# ---------------------------------------------------------------------------
def batch_best_candidates(thetas: np.ndarray) -> list:
    """Batched :func:`repro.synthesis.weyl._best_candidate`.

    Vectorises the 48-candidate move orbit (6 permutations x 4 sign
    patterns x 2 z-branches) for every matrix at once, then replays the
    scalar key comparison -- Python ``round(x, 9)`` tuples, strict ``>``
    keeping the first maximum in enumeration order -- over the in-chamber
    survivors of each matrix.  Entries with no valid candidate (the
    scalar path raises) come back as ``None``.
    """
    permuted = thetas[:, _PERMS]                               # (k, 6, 3)
    flipped = permuted[:, :, None, :] * _SIGNS[None, None, :, :]
    shifted = np.mod(flipped, _HALF_PI)                        # (k, 6, 4, 3)
    shifts = np.round((shifted - flipped) / _HALF_PI).astype(int)
    # Candidate coordinates for both z-branches: (k, 6, 4, 2, 3).
    cands = np.repeat(shifted[:, :, :, None, :], 2, axis=3)
    cands[:, :, :, 1, 2] -= _HALF_PI
    cx, cy, cz = cands[..., 0], cands[..., 1], cands[..., 2]
    valid = (
        (cx <= math.pi / 4 + _TOL)
        & (cx >= cy - _TOL)
        & (cy >= np.abs(cz) - _TOL)
        & (cy >= -_TOL)
    )

    results = []
    for i in range(thetas.shape[0]):
        best_key = None
        best = None
        for p_idx, s_idx, z_branch in zip(*np.nonzero(valid[i])):
            cand = (
                float(cands[i, p_idx, s_idx, z_branch, 0]),
                float(cands[i, p_idx, s_idx, z_branch, 1]),
                float(cands[i, p_idx, s_idx, z_branch, 2]),
            )
            key = (round(cand[0], 9), round(cand[1], 9), round(cand[2], 9))
            if best_key is None or key > best_key:
                best_key = key
                move_shifts = (
                    int(shifts[i, p_idx, s_idx, 0]),
                    int(shifts[i, p_idx, s_idx, 1]),
                    int(shifts[i, p_idx, s_idx, 2]) - int(z_branch),
                )
                best = (cand, _WORDS[p_idx],
                        _SIGN_PATTERNS[s_idx], move_shifts)
        results.append(best)
    return results


# ---------------------------------------------------------------------------
# Stage 3: canonicalization moves (per matrix -- the word differs)
# ---------------------------------------------------------------------------
def _apply_moves(phase, k1, theta, k2, best):
    """Scalar move application from :func:`weyl.kak_decompose`.

    Operates on one matrix's batched intermediates with the identical
    Python/numpy operations; returns ``(phase, left, right, c)`` or
    ``None`` when the canonicalization consistency check would raise.
    """
    coords, word, signs, shifts = best
    c = np.array(theta, dtype=float)
    left, right = k1, k2
    for swap in word:
        g = _SWAP_XY if swap == "xy" else _SWAP_YZ
        if swap == "xy":
            c = np.array([c[1], c[0], c[2]])
        else:
            c = np.array([c[0], c[2], c[1]])
        left = left @ g.conj().T
        right = g @ right
    if signs != (1, 1, 1):
        flipped_axes = frozenset(i for i, s in enumerate(signs) if s < 0)
        g = _FLIP[flipped_axes]
        c = c * np.array(signs)
        left = left @ g
        right = g @ right
    for axis in range(3):
        n_shift = shifts[axis]
        if n_shift == 0:
            continue
        pauli = _SHIFT[axis]
        for _ in range(abs(n_shift)):
            if n_shift > 0:
                left = left @ pauli
                phase = phase * (-1j)
                c[axis] += math.pi / 2
            else:
                left = left @ pauli
                phase = phase * 1j
                c[axis] -= math.pi / 2
    if np.abs(c - np.array(coords)).max() > 1e-7:
        return None
    return phase, left, right, coords


# ---------------------------------------------------------------------------
# Kronecker factors and canonical gates, batched
# ---------------------------------------------------------------------------
def batch_closest_kron_factors(stack: np.ndarray):
    """Batched :func:`repro.quantum.unitaries.closest_kron_factors`.

    One stacked SVD over the Pitsianis--Van Loan rearrangements instead
    of one LAPACK call per matrix; per-slice results match the scalar
    helper bit for bit.
    """
    k = stack.shape[0]
    blocks = (
        stack.reshape(k, 2, 2, 2, 2).transpose(0, 1, 3, 2, 4).reshape(k, 4, 4)
    )
    u, s, vh = np.linalg.svd(blocks)
    root = np.sqrt(s[:, 0])
    a = (root[:, None] * u[:, :, 0]).reshape(k, 2, 2)
    b = (root[:, None] * vh[:, 0, :]).reshape(k, 2, 2)
    return a, b


def batch_kron_2x2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Stacked ``np.kron`` of 2x2 factors (pure products, exact)."""
    k = a.shape[0]
    return (a[:, :, None, :, None] * b[:, None, :, None, :]).reshape(k, 4, 4)


def batch_canonical_gates(coords: np.ndarray) -> np.ndarray:
    """Batched :func:`repro.synthesis.weyl.canonical_gate`.

    Mirrors the scalar accumulation order (XX, then YY, then ZZ factors
    left-multiplied onto the identity) with stacked matmuls.
    """
    k = coords.shape[0]
    result = np.broadcast_to(_I4, (k, 4, 4))
    for axis in range(3):
        angles = coords[:, axis]
        factor = (
            np.cos(angles)[:, None, None] * _I4
            + (1j * np.sin(angles))[:, None, None] * _SHIFT[axis]
        )
        result = np.matmul(factor, result)
    return result


# ---------------------------------------------------------------------------
# Batched one-qubit embeddings (mirrors quantum.circuit._expand, n=2, k=1)
# ---------------------------------------------------------------------------
# ``_expand`` contracts the gate tensor with a reshaped identity via
# ``np.tensordot`` -- internally one ``dot(at, bt)`` on reshaped 2-D
# views.  The batched versions below run the same contraction as one
# stacked matmul against the identical ``bt`` operand, then apply the
# same transpose/reshape; callers guard the composition byte-for-byte
# against a scalar ``_expand`` sample before trusting a batch.
_EXPAND_BT_Q0 = np.eye(4, dtype=complex).reshape(2, 8)
_EXPAND_BT_Q1 = np.ascontiguousarray(
    np.eye(4, dtype=complex).reshape(2, 2, 2, 2).transpose(1, 0, 2, 3)
).reshape(2, 8)


def batch_expand_1q(smalls: np.ndarray, qubit: int) -> np.ndarray:
    """Stacked ``_expand(Gate(..), 2)`` for one-qubit gates on ``qubit``."""
    k = smalls.shape[0]
    if qubit == 0:
        return np.matmul(smalls, _EXPAND_BT_Q0).reshape(k, 4, 4)
    res = np.matmul(smalls, _EXPAND_BT_Q1).reshape(k, 2, 2, 2, 2)
    return res.transpose(0, 2, 1, 3, 4).reshape(k, 4, 4)


def batch_rx_matrices(thetas: np.ndarray) -> np.ndarray:
    """Stacked ``RX(theta)`` unitaries (mirrors ``gates._rx``)."""
    c = np.cos(thetas / 2)
    s = np.sin(thetas / 2)
    out = np.zeros((thetas.shape[0], 2, 2), dtype=complex)
    out[:, 0, 0] = c
    out[:, 1, 1] = c
    off = -1j * s
    out[:, 0, 1] = off
    out[:, 1, 0] = off
    return out


def batch_rz_matrices(thetas: np.ndarray) -> np.ndarray:
    """Stacked ``RZ(theta)`` unitaries (mirrors ``gates._rz``)."""
    phase = np.exp(-0.5j * thetas)
    out = np.zeros((thetas.shape[0], 2, 2), dtype=complex)
    out[:, 0, 0] = phase
    out[:, 1, 1] = np.conj(phase)
    return out


# ---------------------------------------------------------------------------
# Public batched entry points
# ---------------------------------------------------------------------------
def batch_weyl_coordinates(unitaries) -> list:
    """Canonical Weyl coordinates for a stacked batch of unitaries.

    Per matrix bit-identical to
    :func:`repro.synthesis.weyl.weyl_coordinates`; anomalous matrices are
    recomputed through the scalar path (which may raise, as it always
    did).
    """
    stack = _as_batch(unitaries)
    if stack.shape[0] == 0:
        return []
    _, _, thetas, _, ok = batch_kak_raw(stack)
    candidates = batch_best_candidates(thetas)
    coords = []
    for i in range(stack.shape[0]):
        if ok[i] and candidates[i] is not None:
            coords.append(candidates[i][0])
        else:
            coords.append(weyl_coordinates(stack[i]))
    return coords


def batch_kak_decompose(unitaries) -> list:
    """Canonical KAK decompositions for a stacked batch of unitaries.

    Returns one :class:`~repro.synthesis.weyl.KAKDecomposition` per
    input, each bit-identical to ``kak_decompose`` of that matrix alone.
    Matrices the batch stages cannot guarantee fall back to the scalar
    path individually (and raise exactly the scalar errors when they
    must).
    """
    stack = _as_batch(unitaries)
    k = stack.shape[0]
    if k == 0:
        return []
    phases, k1s, thetas, k2s, ok = batch_kak_raw(stack)
    candidates = batch_best_candidates(thetas)

    moved = {}
    for i in range(k):
        if not ok[i] or candidates[i] is None:
            continue
        outcome = _apply_moves(phases[i], k1s[i], thetas[i], k2s[i],
                               candidates[i])
        if outcome is not None:
            moved[i] = outcome

    results: list = [None] * k
    order = sorted(moved)
    if order:
        lefts = np.stack([moved[i][1] for i in order])
        rights = np.stack([moved[i][2] for i in order])
        sides = np.concatenate([lefts, rights])
        a_all, b_all = batch_closest_kron_factors(sides)
        m = len(order)
        a1s, b1s = a_all[:m], b_all[:m]
        a2s, b2s = a_all[m:], b_all[m:]
        factor_err = np.maximum(
            _slice_max_abs(batch_kron_2x2(a1s, b1s) - lefts),
            _slice_max_abs(batch_kron_2x2(a2s, b2s) - rights),
        )
        coords = np.array([moved[i][3] for i in order], dtype=float)
        cans = batch_canonical_gates(coords)
        move_phases = np.array([moved[i][0] for i in order])
        recon = np.matmul(
            np.matmul(move_phases[:, None, None] * batch_kron_2x2(a1s, b1s),
                      cans),
            batch_kron_2x2(a2s, b2s),
        )
        recon_err = _slice_max_abs(recon - stack[order])
        for j, i in enumerate(order):
            if factor_err[j] > 1e-7 or recon_err[j] > 1e-6:
                continue
            phase, _, _, best_coords = moved[i]
            results[i] = KAKDecomposition(
                phase=complex(phase),
                a1=a1s[j], a2=b1s[j],
                x=float(best_coords[0]), y=float(best_coords[1]),
                z=float(best_coords[2]),
                b1=a2s[j], b2=b2s[j],
            )
    for i in range(k):
        if results[i] is None:
            results[i] = kak_decompose(stack[i])
    return results
